open Protego_kernel
open Ktypes
module Fstab = Protego_policy.Fstab
module Sudoers = Protego_policy.Sudoers
module Polkit = Protego_policy.Polkit
module Pwdb = Protego_policy.Pwdb

type t = {
  m : machine;
  task : task;
  mutable self_writes : string list;  (* paths we write; ignore their events *)
}

let watched_paths =
  [ "/etc/fstab"; "/etc/sudoers"; "/etc/sudoers.d/"; "/etc/polkit-1/";
    "/etc/bind"; "/etc/ppp/options"; "/etc/passwds/"; "/etc/groups/";
    "/etc/shadows/" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let flag_to_opt = function
  | Mf_readonly -> "ro"
  | Mf_nosuid -> "nosuid"
  | Mf_nodev -> "nodev"
  | Mf_noexec -> "noexec"

(* /etc/fstab user entries -> /proc/protego/mount_whitelist grammar. *)
let sync_fstab t =
  let m = t.m in
  match Syscall.read_file m t.task "/etc/fstab" with
  | Error _ -> ()
  | Ok contents -> (
      match Fstab.parse contents with
      | Error msg -> log_dmesg m "monitord: fstab parse error: %s" msg
      | Ok entries ->
          let rules =
            entries
            |> List.filter Fstab.user_mountable
            |> List.filter_map (fun e ->
                   let flags = Fstab.mount_flags e in
                   let flags_s =
                     match flags with
                     | [] -> "-"
                     | fs -> String.concat "," (List.map flag_to_opt fs)
                   in
                   let mode =
                     if List.mem "users" e.Fstab.fs_mntops then "users" else "user"
                   in
                   match Fstab.phase_guard e with
                   | Error msg ->
                       (* Shipping the entry without its guard would widen
                          it; dropping is the tighten-only failure mode. *)
                       log_dmesg m "monitord: %s: dropping %s" msg
                         e.Fstab.fs_file;
                       None
                   | Ok g ->
                       let guard_s =
                         match g with
                         | Protego_base.Phase.Always -> ""
                         | g -> " " ^ Protego_base.Phase.guard_to_string g
                       in
                       Some
                         (Printf.sprintf "allow %s %s %s %s %s%s"
                            e.Fstab.fs_spec e.Fstab.fs_file e.Fstab.fs_vfstype
                            flags_s mode guard_s))
          in
          ignore
            (Syscall.write_file m t.task "/proc/protego/mount_whitelist"
               (String.concat "\n" rules ^ "\n")))

let sync_sudoers t =
  let m = t.m in
  match Syscall.read_file m t.task "/etc/sudoers" with
  | Error _ -> ()
  | Ok main -> (
      match Sudoers.parse main with
      | Error msg -> log_dmesg m "monitord: sudoers parse error: %s" msg
      | Ok parsed ->
          let extra_files =
            List.concat_map
              (fun dir ->
                match Syscall.readdir m t.task dir with
                | Ok names -> List.map (fun n -> dir ^ "/" ^ n) names
                | Error _ -> [])
              parsed.Sudoers.includedirs
          in
          let merged =
            List.fold_left
              (fun acc path ->
                match Syscall.read_file m t.task path with
                | Error _ -> acc
                | Ok contents -> (
                    match Sudoers.parse contents with
                    | Ok extra -> Sudoers.merge acc extra
                    | Error msg ->
                        log_dmesg m "monitord: %s parse error: %s" path msg;
                        acc))
              parsed extra_files
          in
          (* PolicyKit rules are explicated in the same delegation
             language (§4.3). *)
          let polkit_rules =
            match Syscall.readdir m t.task "/etc/polkit-1/rules.d" with
            | Error _ -> []
            | Ok names ->
                List.concat_map
                  (fun name ->
                    match
                      Syscall.read_file m t.task
                        ("/etc/polkit-1/rules.d/" ^ name)
                    with
                    | Error _ -> []
                    | Ok contents -> (
                        match Polkit.parse contents with
                        | Ok rules -> Polkit.to_sudoers_rules rules
                        | Error msg ->
                            log_dmesg m "monitord: polkit %s: %s" name msg;
                            []))
                  (List.sort compare names)
          in
          let merged =
            { merged with Sudoers.rules = merged.Sudoers.rules @ polkit_rules }
          in
          ignore
            (Syscall.write_file m t.task "/proc/protego/delegation"
               (Sudoers.to_string merged)))

let sync_bind t =
  let m = t.m in
  match Syscall.read_file m t.task "/etc/bind" with
  | Error _ -> ()
  | Ok contents ->
      ignore (Syscall.write_file m t.task "/proc/protego/bind_map" contents)

let sync_ppp t =
  let m = t.m in
  match Syscall.read_file m t.task "/etc/ppp/options" with
  | Error _ -> ()
  | Ok contents ->
      ignore (Syscall.write_file m t.task "/proc/protego/ppp_policy" contents)

let read_fragment_dir t dir parse_entry =
  let m = t.m in
  match Syscall.readdir m t.task dir with
  | Error _ -> []
  | Ok names ->
      List.filter_map
        (fun name ->
          match Syscall.read_file m t.task (dir ^ "/" ^ name) with
          | Error _ -> None
          | Ok contents -> (
              match parse_entry (String.trim contents) with
              | Ok e -> Some e
              | Error msg ->
                  log_dmesg m "monitord: bad fragment %s/%s: %s" dir name msg;
                  None))
        names

let self_write t path contents =
  t.self_writes <- path :: t.self_writes;
  ignore (Syscall.write_file t.m t.task path contents)

(* Fragments -> kernel accounts grammar + regenerated legacy files. *)
let sync_accounts t =
  let users = read_fragment_dir t "/etc/passwds" Pwdb.parse_passwd_entry in
  let groups = read_fragment_dir t "/etc/groups" Pwdb.parse_group_entry in
  let shadows = read_fragment_dir t "/etc/shadows" Pwdb.parse_shadow_entry in
  if users <> [] then begin
    let csv_or_dash = function [] -> "-" | l -> String.concat "," l in
    let user_line (u : Pwdb.passwd_entry) =
      let supplementary =
        List.filter_map
          (fun (g : Pwdb.group_entry) ->
            if List.mem u.Pwdb.pw_name g.Pwdb.gr_members then
              Some g.Pwdb.gr_name
            else None)
          groups
      in
      Printf.sprintf "user %s %d %d %s" u.Pwdb.pw_name u.Pwdb.pw_uid
        u.Pwdb.pw_gid (csv_or_dash supplementary)
    in
    let group_line (g : Pwdb.group_entry) =
      Printf.sprintf "group %s %d %s%s" g.Pwdb.gr_name g.Pwdb.gr_gid
        (csv_or_dash g.Pwdb.gr_members)
        (match g.Pwdb.gr_password with Some h -> " " ^ h | None -> "")
    in
    let accounts =
      String.concat "\n" (List.map user_line users @ List.map group_line groups)
      ^ "\n"
    in
    ignore (Syscall.write_file t.m t.task "/proc/protego/accounts" accounts);
    (* Regenerate the legacy shared databases for unmodified applications. *)
    self_write t "/etc/passwd" (Pwdb.passwd_to_string users);
    if groups <> [] then self_write t "/etc/group" (Pwdb.group_to_string groups);
    if shadows <> [] then
      self_write t "/etc/shadow" (Pwdb.shadow_to_string shadows)
  end

let sync_all t =
  sync_fstab t;
  sync_sudoers t;
  sync_bind t;
  sync_ppp t;
  sync_accounts t

let start m =
  let cred = Cred.make ~uid:0 ~gid:0 () in
  let task = Machine.spawn_task m ~cred ~cwd:"/" () in
  task.exe_path <- "/usr/sbin/protego-monitord";
  let t = { m; task; self_writes = [] } in
  sync_all t;
  (* The initial sync's own events are stale; discard them. *)
  Queue.clear m.fs_events;
  t.self_writes <- [];
  t

let relevant_sync t path =
  if List.mem path t.self_writes then None
  else if path = "/etc/fstab" then Some sync_fstab
  else if
    path = "/etc/sudoers"
    || has_prefix ~prefix:"/etc/sudoers.d/" path
    || has_prefix ~prefix:"/etc/polkit-1/" path
  then Some sync_sudoers
  else if path = "/etc/bind" then Some sync_bind
  else if path = "/etc/ppp/options" then Some sync_ppp
  else if
    has_prefix ~prefix:"/etc/passwds/" path
    || has_prefix ~prefix:"/etc/groups/" path
    || has_prefix ~prefix:"/etc/shadows/" path
  then Some sync_accounts
  else None

let step t =
  let m = t.m in
  let actions = ref [] in
  let rec drain () =
    match Queue.take_opt m.fs_events with
    | None -> ()
    | Some ev ->
        (match relevant_sync t ev.ev_path with
        | Some sync ->
            if not (List.memq sync !actions) then actions := sync :: !actions
        | None -> ());
        drain ()
  in
  drain ();
  t.self_writes <- [];
  List.iter (fun sync -> sync t) (List.rev !actions);
  (* Our own syncs just queued events; swallow the ones we caused. *)
  let leftover = Queue.create () in
  Queue.transfer m.fs_events leftover;
  Queue.iter
    (fun ev -> if not (List.mem ev.ev_path t.self_writes) then Queue.add ev m.fs_events)
    leftover;
  t.self_writes <- [];
  List.length !actions
