(** Deterministic decision-plane workload generator.

    Produces a replayable schedule of {!Protego_plane.Plane.request}
    values — seeded PRNG, no wall clock, no ambient state — with:

    - a {b zipfian} popularity distribution over an interned request
      pool per hook (a few requests dominate, the tail is long: what a
      real hook sees, and what exercises the front slots and the memo
      table at realistic hit ratios; request values are physically
      shared, so identity-keyed fast paths work);
    - a configurable {b hook mix} (mount/umount/bind/ppp weights) and
      zipfian subject skew;
    - {b phases}: [Steady] (mostly grants), [Deny_flood] (a burst of
      denials), [Audit_heavy] (every request carries ~160-byte object
      strings drawn against gated long-path rules — the journal
      encoder's worst case; the long rules only enter the policy when a
      heavy phase is present, so other schedules are unchanged), and
      [Reload_storm] (policy republication every [period] requests —
      the snapshot-churn worst case), and [Opt_storm] (a profile-guided
      recompile toggle every [period] requests — optimize/deoptimize
      alternation racing the decision path), and [Phase_storm] (a
      lifecycle-phase advance for one subject every [period] requests —
      phase-keyed cache invalidation racing the decision path).  Storm
      reloads are
      generation bumps and optimizations are proof-gated rewrites,
      i.e. both are semantics preserving: every verdict stays equal to
      the fixed-policy oracle, which is what lets differential tests
      run under storms;
    - {b open or closed} loop shape: [`Open] draws one global arrival
      stream (workers share it round-robin); [`Closed] gives each of
      [workers] simulated callers its own stream, interleaved at its
      worker's stride.

    The same [spec] and [workers] always generate the same schedule —
    [generate] is a pure function, tested structurally. *)

module PS = Protego_core.Policy_state
module Plane = Protego_plane.Plane

type phase =
  | Steady
  | Deny_flood
  | Audit_heavy
  | Reload_storm of { period : int }
  | Opt_storm of { period : int }
  | Phase_storm of { period : int }

type spec = {
  seed : int;
  subjects : int;        (** distinct caller uids, zipf-ranked *)
  zipf_s : float;        (** zipf exponent for pools and subjects *)
  rules : int;           (** synthetic rules per policy source *)
  pool : int;            (** interned requests per hook per polarity *)
  mix : int * int * int * int;  (** mount/umount/bind/ppp weights *)
  loop : [ `Open | `Closed ];
  phases : (phase * int) list;  (** (phase, request count), in order *)
}

val default : ?seed:int -> ?phases:(phase * int) list -> unit -> spec
(** 16 subjects, zipf 1.1, 64 rules, 256-request pools, mix 4:2:3:1,
    open loop, one 10k [Steady] phase, seed 42. *)

val install_policy : spec -> PS.t -> unit
(** Install the synthetic policy the generated requests are built
    against (mount whitelist [/dev/wl<i> -> /media/wl<i>], bind map
    ports [1000+<i>], ppp device whitelist) and bump the written
    sources' generations.  Must be called on the plane's live state
    before running a schedule, or every request denies. *)

type schedule = {
  s_requests : Plane.request array;
  s_reloads : (int * PS.source) list;
      (** (completed-count threshold, source whose generation to bump)
          — from [Reload_storm] phases, ascending.  The runner turns
          each into a bump + publish action. *)
  s_optimizes : int list;
      (** completed-count thresholds from [Opt_storm] phases,
          ascending.  The runner alternates a filter optimize /
          deoptimize toggle at each threshold; both directions are
          verdict-preserving, so the oracle is unchanged. *)
  s_phase_steps : (int * int) list;
      (** (completed-count threshold, subject) pairs from [Phase_storm]
          phases, ascending — the runner advances that subject's
          lifecycle phase one step forward
          ({!Protego_plane.Plane.set_subject_phase}; saturating at the
          final phase).  The synthetic rules are all [Always]-guarded,
          so the storm is verdict-preserving: it stresses the
          phase-keyed front slots and memo entries, not the policy. *)
}

val generate : spec -> workers:int -> schedule
(** Deterministic in [spec] and [workers].  [workers] only matters for
    [`Closed] loops (per-caller stream interleaving). *)
