type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea & Flood): one additive constant walk plus two
   xor-shift-multiply finalizer rounds.  Chosen for its tiny state and
   because a single step is enough mixing for consecutive seeds. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t =
  (* 53 mantissa bits, the usual double-in-[0,1) construction *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let split t = { state = next t }
