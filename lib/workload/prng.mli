(** Deterministic pseudo-random numbers for the workload generator —
    splitmix64, seeded explicitly, no wall clock anywhere.  The same
    seed always yields the same stream on every platform, which is what
    makes generated schedules replayable byte-for-byte. *)

type t

val create : int -> t
(** A generator from a seed. *)

val next : t -> int64
(** The next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound]: uniform in [0, bound); [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** An independent generator derived from this one's stream. *)
