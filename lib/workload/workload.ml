module PS = Protego_core.Policy_state
module Plane = Protego_plane.Plane
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts
module Ppp = Protego_net.Ppp
module Ktypes = Protego_kernel.Ktypes

type phase =
  | Steady
  | Deny_flood
  | Audit_heavy
  | Reload_storm of { period : int }
  | Opt_storm of { period : int }
  | Phase_storm of { period : int }

type spec = {
  seed : int;
  subjects : int;
  zipf_s : float;
  rules : int;
  pool : int;
  mix : int * int * int * int;
  loop : [ `Open | `Closed ];
  phases : (phase * int) list;
}

let default ?(seed = 42) ?(phases = [ (Steady, 10_000) ]) () =
  { seed; subjects = 16; zipf_s = 1.1; rules = 64; pool = 256;
    mix = (4, 2, 3, 1); loop = `Open; phases }

(* --- zipf sampling ------------------------------------------------------ *)

(* CDF over ranks 0..k-1 with weight 1/(r+1)^s; sampling is a float draw
   plus binary search.  Popularity is by rank: pool item 0 is hottest. *)
let zipf_cdf k s =
  let w = Array.init k (fun r -> 1. /. ((float_of_int (r + 1)) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_draw cdf rng =
  let u = Prng.float rng in
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- the synthetic policy ---------------------------------------------- *)

let rule_flags i = if i mod 3 = 0 then [ Ktypes.Mf_nosuid ] else []
let rule_mode i = if i mod 2 = 0 then `Users else `User
let rule_source i = "/dev/wl" ^ string_of_int i
let rule_target i = "/media/wl" ^ string_of_int i
let bind_port i = 1000 + i
let bind_proto i = if i mod 2 = 0 then Bindconf.Tcp else Bindconf.Udp
let bind_exe i = "/usr/sbin/svc" ^ string_of_int (i mod 8)
let bind_owner spec i = i mod spec.subjects
let ppp_devices = [ "/dev/ttyS0"; "/dev/ttyS1" ]

(* Audit_heavy exercises the journal's string encoder: deep paths that
   approach the journal's 255-byte string cap.  The heavy rules only
   enter the policy when the spec actually has a heavy phase, so every
   other schedule is byte-for-byte what it was before the phase
   existed. *)
let heavy_pad = String.make 150 'p'
let heavy_count = 8
let heavy_source i = "/dev/hv" ^ string_of_int i
let heavy_target i = "/media/heavy/" ^ heavy_pad ^ "/vol" ^ string_of_int i
let heavy_port i = 9000 + i
let heavy_exe i = "/opt/heavy/" ^ heavy_pad ^ "/svc" ^ string_of_int (i mod 4)

let has_heavy spec = List.exists (fun (p, _) -> p = Audit_heavy) spec.phases

let install_policy spec (st : PS.t) =
  let heavy_mounts =
    if has_heavy spec then
      List.init heavy_count (fun i ->
          { PS.mr_source = heavy_source i; mr_target = heavy_target i;
            mr_fstype = "ext4"; mr_flags = []; mr_mode = `Users;
            mr_phase = PS.Phase.Always })
    else []
  in
  let heavy_binds =
    if has_heavy spec then
      List.init heavy_count (fun i ->
          { Bindconf.port = heavy_port i; proto = Bindconf.Tcp;
            exe = heavy_exe i; owner = bind_owner spec i;
            phase = Protego_base.Phase.Always })
    else []
  in
  st.PS.mounts <-
    List.init spec.rules (fun i ->
        { PS.mr_source = rule_source i; mr_target = rule_target i;
          mr_fstype = "ext4"; mr_flags = rule_flags i; mr_mode = rule_mode i;
          mr_phase = PS.Phase.Always })
    @ heavy_mounts;
  st.PS.binds <-
    List.init spec.rules (fun i ->
        { Bindconf.port = bind_port i; proto = bind_proto i; exe = bind_exe i;
          owner = bind_owner spec i; phase = Protego_base.Phase.Always })
    @ heavy_binds;
  st.PS.ppp <-
    { Pppopts.directives =
        Pppopts.Session_option (Ppp.Compression "deflate")
        :: List.map
             (fun d -> Pppopts.Allow_device (d, Protego_base.Phase.Always))
             ppp_devices };
  PS.bump_generation st PS.Mounts;
  PS.bump_generation st PS.Binds;
  PS.bump_generation st PS.Ppp

(* --- request pools ------------------------------------------------------ *)

let safe_opts =
  [| Ppp.Compression "deflate"; Ppp.Async_map 0xffff; Ppp.Mru 1500; Ppp.Accomp |]

let unsafe_opts =
  [| Ppp.Default_route; Ppp.Modem_line_speed 115200;
     Ppp.Modem_flow_control "rts/cts" |]

(* Interned request pools, one per (hook, polarity).  Built once per
   schedule from the spec's own PRNG stream; every generated request
   aliases a pool entry, so repeated draws are physically identical. *)
let build_pools spec =
  let rng = Prng.create (spec.seed lxor 0x5eed) in
  let subj_cdf = zipf_cdf spec.subjects spec.zipf_s in
  let subj () = zipf_draw subj_cdf rng in
  let rule () = Prng.int rng spec.rules in
  let mount_allow () =
    let i = rule () in
    Plane.Mount
      { subject = subj (); source = rule_source i; target = rule_target i;
        fstype = "ext4"; flags = rule_flags i }
  in
  let mount_deny () =
    let i = rule () in
    match Prng.int rng 3 with
    | 0 ->
        (* fstype mismatch: no rule matches *)
        Plane.Mount
          { subject = subj (); source = rule_source i; target = rule_target i;
            fstype = "vfat"; flags = rule_flags i }
    | 1 ->
        (* missing required flag (only nosuid rules can miss one) *)
        let i = i - (i mod 3) in
        Plane.Mount
          { subject = subj (); source = rule_source i; target = rule_target i;
            fstype = "ext4"; flags = [] }
    | _ ->
        Plane.Mount
          { subject = subj (); source = "/dev/evil"; target = rule_target i;
            fstype = "ext4"; flags = [] }
  in
  let umount_allow () =
    let i = rule () in
    let s = subj () in
    match rule_mode i with
    | `Users -> Plane.Umount { subject = s; target = rule_target i;
                               mounted_by = s + 7 }
    | `User -> Plane.Umount { subject = s; target = rule_target i;
                              mounted_by = s }
  in
  let umount_deny () =
    let s = subj () in
    if spec.rules >= 2 && Prng.int rng 2 = 0 then
      (* a `User (odd-index) rule, unmounted by someone else *)
      let i = (2 * Prng.int rng (spec.rules / 2)) + 1 in
      Plane.Umount { subject = s; target = rule_target i; mounted_by = s + 1 }
    else Plane.Umount { subject = s; target = "/media/none"; mounted_by = s }
  in
  let bind_allow () =
    let i = rule () in
    Plane.Bind
      { subject = bind_owner spec i; port = bind_port i; proto = bind_proto i;
        exe = bind_exe i }
  in
  let bind_deny () =
    let i = rule () in
    if Prng.int rng 2 = 0 then
      Plane.Bind
        { subject = bind_owner spec i; port = bind_port i;
          proto = bind_proto i; exe = "/usr/bin/rogue" }
    else
      Plane.Bind
        { subject = bind_owner spec i + 1; port = bind_port i;
          proto = bind_proto i; exe = bind_exe i }
  in
  let ppp_allow () =
    Plane.Ppp_ioctl
      { subject = subj ();
        device = List.nth ppp_devices (Prng.int rng (List.length ppp_devices));
        opt = safe_opts.(Prng.int rng (Array.length safe_opts)) }
  in
  let ppp_deny () =
    if Prng.int rng 2 = 0 then
      Plane.Ppp_ioctl
        { subject = subj (); device = "/dev/ttyUSB9";
          opt = safe_opts.(Prng.int rng (Array.length safe_opts)) }
    else
      Plane.Ppp_ioctl
        { subject = subj (); device = List.hd ppp_devices;
          opt = unsafe_opts.(Prng.int rng (Array.length unsafe_opts)) }
  in
  let pool f = Array.init spec.pool (fun _ -> f ()) in
  [| (pool mount_allow, pool mount_deny);
     (pool umount_allow, pool umount_deny);
     (pool bind_allow, pool bind_deny);
     (pool ppp_allow, pool ppp_deny) |]

(* Long-string pools for the [Audit_heavy] phase, against the gated
   heavy rules [install_policy] adds.  Separate PRNG stream so the
   heavy pools never perturb the normal ones. *)
let build_heavy_pools spec =
  let rng = Prng.create (spec.seed lxor 0x4eaf) in
  let subj_cdf = zipf_cdf spec.subjects spec.zipf_s in
  let subj () = zipf_draw subj_cdf rng in
  let hrule () = Prng.int rng heavy_count in
  let mount_allow () =
    let i = hrule () in
    Plane.Mount
      { subject = subj (); source = heavy_source i; target = heavy_target i;
        fstype = "ext4"; flags = [] }
  in
  let mount_deny () =
    let i = hrule () in
    Plane.Mount
      { subject = subj (); source = heavy_source i; target = heavy_target i;
        fstype = "vfat"; flags = [] }
  in
  let umount_allow () =
    let s = subj () in
    Plane.Umount
      { subject = s; target = heavy_target (hrule ()); mounted_by = s + 3 }
  in
  let umount_deny () =
    let s = subj () in
    Plane.Umount
      { subject = s; target = "/media/heavy/" ^ heavy_pad ^ "/none";
        mounted_by = s }
  in
  let bind_allow () =
    let i = hrule () in
    Plane.Bind
      { subject = bind_owner spec i; port = heavy_port i;
        proto = Bindconf.Tcp; exe = heavy_exe i }
  in
  let bind_deny () =
    let i = hrule () in
    Plane.Bind
      { subject = bind_owner spec i; port = heavy_port i;
        proto = Bindconf.Tcp; exe = "/opt/rogue/" ^ heavy_pad ^ "/bin" }
  in
  let ppp_allow () =
    Plane.Ppp_ioctl
      { subject = subj ();
        device = List.nth ppp_devices (Prng.int rng (List.length ppp_devices));
        opt = safe_opts.(Prng.int rng (Array.length safe_opts)) }
  in
  let ppp_deny () =
    Plane.Ppp_ioctl
      { subject = subj (); device = "/dev/tty/" ^ heavy_pad;
        opt = safe_opts.(Prng.int rng (Array.length safe_opts)) }
  in
  let pool f = Array.init spec.pool (fun _ -> f ()) in
  [| (pool mount_allow, pool mount_deny);
     (pool umount_allow, pool umount_deny);
     (pool bind_allow, pool bind_deny);
     (pool ppp_allow, pool ppp_deny) |]

(* --- schedule generation ------------------------------------------------ *)

type schedule = {
  s_requests : Plane.request array;
  s_reloads : (int * PS.source) list;
  s_optimizes : int list;
  s_phase_steps : (int * int) list;
}

let storm_sources = [| PS.Mounts; PS.Binds; PS.Ppp |]

let generate spec ~workers =
  if workers < 1 then invalid_arg "Workload.generate";
  let pools = build_pools spec in
  let hpools = if has_heavy spec then build_heavy_pools spec else pools in
  let pool_cdf = zipf_cdf spec.pool spec.zipf_s in
  let m1, m2, m3, m4 = spec.mix in
  let mix_total = m1 + m2 + m3 + m4 in
  if mix_total <= 0 then invalid_arg "Workload.generate: empty mix";
  let hook_of_draw d =
    if d < m1 then 0 else if d < m1 + m2 then 1 else if d < m1 + m2 + m3 then 2
    else 3
  in
  let n = List.fold_left (fun acc (_, c) -> acc + c) 0 spec.phases in
  let rngs =
    match spec.loop with
    | `Open -> [| Prng.create spec.seed |]
    | `Closed ->
        let master = Prng.create spec.seed in
        Array.init workers (fun _ -> Prng.split master)
  in
  let rng_for i =
    match spec.loop with `Open -> rngs.(0) | `Closed -> rngs.(i mod workers)
  in
  let requests = Array.make n (fst pools.(0)).(0) in
  let reloads = ref [] in
  let optimizes = ref [] in
  let phase_steps = ref [] in
  let stepped = ref 0 in
  let storms = ref 0 in
  let off = ref 0 in
  List.iter
    (fun (phase, count) ->
      let deny_pct =
        match phase with
        | Steady | Reload_storm _ | Opt_storm _ | Phase_storm _ -> 10
        | Audit_heavy -> 30
        | Deny_flood -> 85
      in
      let pools = if phase = Audit_heavy then hpools else pools in
      (match phase with
       | Reload_storm { period } when period > 0 ->
           let th = ref (!off + period) in
           while !th < !off + count do
             reloads :=
               (!th, storm_sources.(!storms mod Array.length storm_sources))
               :: !reloads;
             incr storms;
             th := !th + period
           done
       | Opt_storm { period } when period > 0 ->
           (* Same threshold shape as Reload_storm, but the action is a
              recompile toggle instead of a generation bump: the runner
              alternates optimize / deoptimize at each threshold, so the
              schedule itself only records where the toggles land. *)
           let th = ref (!off + period) in
           while !th < !off + count do
             optimizes := !th :: !optimizes;
             th := !th + period
           done
       | Phase_storm { period } when period > 0 ->
           (* Each threshold advances one subject a single lifecycle
              step (round-robin over subjects).  The workload's own
              rules are all [Always]-guarded, so the storm is
              verdict-preserving — it stresses the phase-keyed cache
              invalidation, not the policy semantics. *)
           let th = ref (!off + period) in
           while !th < !off + count do
             phase_steps := (!th, !stepped mod spec.subjects) :: !phase_steps;
             incr stepped;
             th := !th + period
           done
       | _ -> ());
      for i = !off to !off + count - 1 do
        let rng = rng_for i in
        let hook = hook_of_draw (Prng.int rng mix_total) in
        let allow_pool, deny_pool = pools.(hook) in
        let pool =
          if Prng.int rng 100 < deny_pct then deny_pool else allow_pool
        in
        requests.(i) <- pool.(zipf_draw pool_cdf rng)
      done;
      off := !off + count)
    spec.phases;
  { s_requests = requests; s_reloads = List.rev !reloads;
    s_optimizes = List.rev !optimizes;
    s_phase_steps = List.rev !phase_steps }
