module PS = Protego_core.Policy_state
module Pfm = Protego_filter.Pfm
module Compile = Protego_filter.Pfm_compile

type progs = {
  p_mount : Pfm.program;
  p_umount : Pfm.program;
  p_bind : Pfm.program;
  p_ppp : Pfm.program;
}

type t = {
  epoch : int;
  gens : int array;
  frozen : PS.t;
  progs : progs;
}

let filter_rule (r : PS.mount_rule) : Compile.mount_rule =
  { Compile.fm_source = r.PS.mr_source;
    fm_target = r.PS.mr_target;
    fm_fstype = r.PS.mr_fstype;
    fm_flags = r.PS.mr_flags;
    fm_user_only = (r.PS.mr_mode = `User);
    fm_phase = r.PS.mr_phase }

(* The policy fields are immutable values (lists, records): aliasing them
   into a fresh record decouples the snapshot from every future mutation
   of the live state, which only ever replaces whole fields. *)
let copy_state (st : PS.t) =
  let c = PS.create () in
  c.PS.mounts <- st.PS.mounts;
  c.PS.binds <- st.PS.binds;
  c.PS.delegation <- st.PS.delegation;
  c.PS.users <- st.PS.users;
  c.PS.groups <- st.PS.groups;
  c.PS.ppp <- st.PS.ppp;
  c.PS.reauth_read_prefixes <- st.PS.reauth_read_prefixes;
  c.PS.file_acl <- st.PS.file_acl;
  c

let freeze ~epoch (st : PS.t) =
  let frozen = copy_state st in
  let gens = Array.of_list (List.map (PS.generation st) PS.sources) in
  let rules = List.map filter_rule frozen.PS.mounts in
  let progs =
    { p_mount = Compile.mount rules;
      p_umount = Compile.umount rules;
      p_bind = Compile.bind frozen.PS.binds;
      p_ppp = Compile.ppp_ioctl frozen.PS.ppp }
  in
  { epoch; gens; frozen; progs }

let clone_prog (p : Pfm.program) =
  { p with Pfm.counters = Array.make (Array.length p.Pfm.counters) 0;
    retired = 0 }

let clone_progs t =
  { p_mount = clone_prog t.progs.p_mount;
    p_umount = clone_prog t.progs.p_umount;
    p_bind = clone_prog t.progs.p_bind;
    p_ppp = clone_prog t.progs.p_ppp }

let gen_for t s = t.gens.(PS.source_index s)

let ref_mount ?phase t ~source ~target ~fstype ~flags =
  PS.mount_decision ?phase t.frozen ~source ~target ~fstype ~flags

let ref_umount ?phase t ~target ~mounted_by ~ruid =
  PS.umount_decision ?phase t.frozen ~target ~mounted_by ~ruid

let ref_bind ?phase t ~port ~proto ~exe ~uid =
  PS.bind_allowed ?phase t.frozen ~port ~proto ~exe ~uid

let ref_ppp ?phase t ~device ~opt =
  PS.ppp_ioctl_decision ?phase t.frozen ~device ~opt

(* --- publication -------------------------------------------------------- *)

type pub = {
  cur : t Atomic.t;
  hist : (int, t) Hashtbl.t;  (* epoch -> snapshot, last [hcap] epochs *)
  hcap : int;
}

let default_history = 1024

let make ?(history = default_history) st =
  let s0 = freeze ~epoch:0 st in
  let hist = Hashtbl.create 64 in
  Hashtbl.replace hist 0 s0;
  { cur = Atomic.make s0; hist; hcap = max 1 history }

let current pub = Atomic.get pub.cur

(* The history is what lets the journal replay re-evaluate an
   epoch-stamped decision against the exact policy that served it.
   Each retained snapshot pins its frozen policy and compiled programs,
   so the window is bounded: only the newest [hcap] epochs survive, and
   a replay reaching further back reports the miss
   (Replay.rp_missing_epochs) instead of growing the plane without
   limit under reload storms. *)
let at_epoch pub e = Hashtbl.find_opt pub.hist e

(* The same discipline as the dispatcher's physical-identity watches: a
   harness that assigns a watched field directly (bypassing the /proc
   write path and its generation bump) must still invalidate stale
   verdicts.  The previous snapshot aliased the field value it froze, so
   identity against it detects exactly those unannounced replacements. *)
let watch_parity prev (st : PS.t) ~bump =
  let check source changed =
    if changed && PS.generation st source = gen_for prev source then
      if bump then PS.bump_generation st source else raise Exit
  in
  check PS.Mounts (st.PS.mounts != prev.frozen.PS.mounts);
  check PS.Binds (st.PS.binds != prev.frozen.PS.binds);
  check PS.Ppp (st.PS.ppp != prev.frozen.PS.ppp)

let publish pub st =
  let prev = Atomic.get pub.cur in
  watch_parity prev st ~bump:true;
  let next = freeze ~epoch:(prev.epoch + 1) st in
  Atomic.set pub.cur next;
  Hashtbl.replace pub.hist next.epoch next;
  (* Epochs advance by exactly one, so evicting [epoch - hcap] keeps
     precisely the newest [hcap]. *)
  Hashtbl.remove pub.hist (next.epoch - pub.hcap);
  next

let stale pub st =
  let prev = Atomic.get pub.cur in
  match watch_parity prev st ~bump:false with
  | () ->
      List.exists (fun s -> PS.generation st s <> gen_for prev s) PS.sources
  | exception Exit -> true
