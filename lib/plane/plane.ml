module PS = Protego_core.Policy_state
module DC = Protego_core.Decision_cache
module Trace = Protego_core.Trace
module Pfm = Protego_filter.Pfm
module Compile = Protego_filter.Pfm_compile
module Bindconf = Protego_policy.Bindconf
module Errno = Protego_base.Errno
module Phase = Protego_base.Phase
module J = Protego_journal.Journal

type request =
  | Mount of {
      subject : int;
      source : string;
      target : string;
      fstype : string;
      flags : Protego_kernel.Ktypes.mount_flag list;
    }
  | Umount of { subject : int; target : string; mounted_by : int }
  | Bind of {
      subject : int;
      port : int;
      proto : Bindconf.proto;
      exe : string;
    }
  | Ppp_ioctl of { subject : int; device : string; opt : Protego_net.Ppp.option_ }

let hook_count = 4

let hook_index = function
  | Mount _ -> 0
  | Umount _ -> 1
  | Bind _ -> 2
  | Ppp_ioctl _ -> 3

let hook_name = function
  | 0 -> "mount"
  | 1 -> "umount"
  | 2 -> "bind"
  | 3 -> "ppp_ioctl"
  | _ -> invalid_arg "Plane.hook_name"

let subject_of = function
  | Mount { subject; _ } | Umount { subject; _ } | Bind { subject; _ }
  | Ppp_ioctl { subject; _ } ->
      subject

(* Generation-vector source backing each hook, as a snapshot gens index
   ({!PS.source_index} order): mount/umount read the mount whitelist,
   bind the bind map, ppp_ioctl the ppp policy. *)
let gens_index = [| 0; 0; 1; 4 |]

type outcome = {
  o_verdict : Pfm.verdict;
  o_errno : Errno.t option;
  o_epoch : int;
  o_phase : int;
}

type audit_entry = {
  a_seq : int;
  a_hook : int;
  a_subject : int;
  a_allowed : bool;
  a_epoch : int;
}

type run_result = {
  rr_outcomes : outcome array;
  rr_audit : audit_entry array;
  rr_audit_lost : string option;
  rr_wall_ns : int;
  rr_min_op_ns : float array;
}

let capacity_per_sec rr =
  Array.fold_left
    (fun acc ns -> if Float.is_finite ns && ns > 0. then acc +. (1e9 /. ns) else acc)
    0. rr.rr_min_op_ns

(* One-entry front slot per hook, ahead of the worker's memo table.
   Keyed on the request value by physical identity plus the snapshot
   epoch (same epoch implies the same generation vector — epochs only
   ever move by publication) and the worker cache's epoch (a [reset]
   must kill slots, as in the sequential dispatcher). *)
type slot = {
  mutable f_sepoch : int;  (* snapshot epoch; -1: never filled *)
  mutable f_cepoch : int;  (* worker decision-cache epoch *)
  mutable f_phase : int;   (* subject phase index the verdict was served under *)
  mutable f_req : request option;
  mutable f_verdict : Pfm.verdict;
  mutable f_errno : Errno.t option;
}

let fresh_slot () =
  { f_sepoch = -1; f_cepoch = 0; f_phase = 0; f_req = None;
    f_verdict = Pfm.Deny; f_errno = None }

(* Everything a worker touches on a decision is domain-private; the only
   shared reads are the snapshot pointer and the live [t.engine]/clock
   configuration (constant during a run). *)
type audit_mode = [ `Off | `Spool | `Journal | `Both ]

let audit_mode_name = function
  | `Off -> "off"
  | `Spool -> "spool"
  | `Journal -> "journal"
  | `Both -> "both"

type worker = {
  w_id : int;
  mutable w_term : J.term;         (* this worker's journal write handle *)
  w_cache : DC.t;
  w_ch : DC.hook array;            (* per hook, this worker's cache hooks *)
  w_slots : slot array;            (* per hook *)
  mutable w_snap : Snapshot.t;
  mutable w_progs : Snapshot.progs;
  w_gens : int array array;        (* per-hook scratch generation vectors *)
  w_dec : int array;               (* per-hook decisions served *)
  w_allow : int array;
  w_deny : int array;
  w_evals : int array;             (* per-hook engine evaluations *)
  w_completed : int Atomic.t;      (* this run's progress, coordinator-read *)
  mutable w_min_op_ns : float;     (* min per-op cost over timed batches *)
  mutable w_sample : int;          (* latency sampling phase counter *)
  w_trace : Trace.t;
  w_keys : Trace.key array;        (* per hook, engine "plane" *)
}

let make_worker ?cache_capacity journal id snap =
  let cache = DC.create ?capacity:cache_capacity () in
  let ch = Array.init hook_count (fun hi -> DC.register cache (hook_name hi)) in
  let tr = Trace.create () in
  let keys =
    Array.init hook_count (fun hi ->
        Trace.register tr ~hook:(hook_name hi) ~engine:"plane")
  in
  { w_id = id; w_term = J.term journal ~domain:id; w_cache = cache; w_ch = ch;
    w_slots = Array.init hook_count (fun _ -> fresh_slot ());
    w_snap = snap; w_progs = Snapshot.clone_progs snap;
    w_gens = Array.init hook_count (fun _ -> [| 0 |]);
    w_dec = Array.make hook_count 0; w_allow = Array.make hook_count 0;
    w_deny = Array.make hook_count 0; w_evals = Array.make hook_count 0;
    w_completed = Atomic.make 0; w_min_op_ns = infinity; w_sample = 0;
    w_trace = tr; w_keys = keys }

(* Per-subject lifecycle phases.  Subjects are uids; the table is a
   fixed array of atomics indexed [subject mod phase_slots], so workers
   read a subject's phase with one [Atomic.get] and a coordinator can
   advance it mid-run (a reload action) with release semantics — no
   locks, no resizes.  Slot aliasing between subjects further apart
   than the table merely conflates their phases (both only ever move
   forward), never loosens either. *)
let phase_slots = 1024

type t = {
  st : PS.t;
  pub : Snapshot.pub;
  phases : int Atomic.t array;   (* Phase.index per subject slot *)
  mutable domains : int;
  mutable workers : worker array;
  mutable engine : [ `Pfm | `Ref ];
  mutable clock : (unit -> int) option;
  mutable runs : int;
  mutable audit : audit_mode;
  mutable record : bool;
  (* record mode: engine verdicts other than Allow are served as Allow
     but journaled with the distinct verdict code 3 ("recorded"), so a
     permissive observation run captures exactly what enforcement would
     have denied without actually denying it. *)
  cache_capacity : int option;   (* worker decision-cache capacity knob *)
  mutable journal : J.t;
  mutable rotations : int;
  jseg_bytes : int;   (* journal geometry, reused on rotate *)
  jsegs : int;
  mutable running : bool;  (* a run (real or simulated) is in flight *)
}

let max_domains = 64

(* Each worker's journal term owns a whole segment, so a plane can never
   run more domains than its journal has segments. *)
let clamp_domains ~segments d = max 1 (min (min max_domains segments) d)

let create ?(domains = 1) ?(journal_seg_bytes = 262144)
    ?(journal_segments = 32) ?cache_capacity st =
  let pub = Snapshot.make st in
  let d = clamp_domains ~segments:journal_segments domains in
  let snap = Snapshot.current pub in
  let journal =
    J.create ~seg_bytes:journal_seg_bytes ~segments:journal_segments ()
  in
  { st; pub;
    phases = Array.init phase_slots (fun _ -> Atomic.make 0);
    domains = d;
    workers = Array.init d (fun i -> make_worker ?cache_capacity journal i snap);
    engine = `Pfm; clock = None; runs = 0; audit = `Journal;
    record = false; cache_capacity; journal;
    rotations = 0; jseg_bytes = journal_seg_bytes; jsegs = journal_segments;
    running = false }

let domains t = t.domains
let plane_max_domains t = min max_domains t.jsegs

let in_flight_msg op =
  Printf.sprintf
    "Plane.%s: a run is in flight; apply the change between runs" op

let set_domains t d =
  if t.running then invalid_arg (in_flight_msg "set_domains");
  let d = clamp_domains ~segments:t.jsegs d in
  (* The replaced workers' terms would otherwise stay registered on the
     journal forever (inflating stats and pinning half-filled
     segments): pad them out and deregister before attaching new ones. *)
  Array.iter (fun w -> J.retire w.w_term) t.workers;
  t.domains <- d;
  let snap = Snapshot.current t.pub in
  t.workers <-
    Array.init d (fun i ->
        make_worker ?cache_capacity:t.cache_capacity t.journal i snap)

let audit_mode t = t.audit
let set_audit_mode t m = t.audit <- m

let record_mode t = t.record

let set_record_mode t on =
  if t.running then invalid_arg (in_flight_msg "set_record_mode");
  t.record <- on
let journal t = t.journal
let rotations t = t.rotations

(* Swap in a fresh journal and re-attach every worker's term to it.  The
   run counter keeps growing, so run stamps never collide across a
   rotation even though sequence numbers restart. *)
let rotate_journal t =
  let j = J.create ~seg_bytes:t.jseg_bytes ~segments:t.jsegs () in
  t.journal <- j;
  t.rotations <- t.rotations + 1;
  Array.iter (fun w -> w.w_term <- J.term j ~domain:w.w_id) t.workers

let reset_journal t =
  rotate_journal t;
  t.rotations <- 0

let snapshot_at t e = Snapshot.at_epoch t.pub e

let engine t = t.engine
let set_engine t e = t.engine <- e
let set_clock t f = t.clock <- Some f
let state t = t.st
let current t = Snapshot.current t.pub
let publish t = Snapshot.publish t.pub t.st

let refresh t =
  if Snapshot.stale t.pub t.st then publish t else Snapshot.current t.pub

let runs t = t.runs

(* --- per-subject phases ------------------------------------------------- *)

let phase_slot t subject = t.phases.((subject land max_int) mod phase_slots)

let subject_phase t ~subject = Phase.of_index (Atomic.get (phase_slot t subject))

(* Tighten-only: the phase index joins forward or stays put; an
   attempted loosening is reported, never applied (the LSM maps it to
   EPERM plus an audit record).  CAS loop because a reload action may
   race a concurrent advance of the same subject. *)
let set_subject_phase t ~subject ph =
  let target = Phase.index ph in
  let slot = phase_slot t subject in
  let rec go () =
    let cur = Atomic.get slot in
    if target < cur then
      Error
        (Printf.sprintf
           "phase: subject %d is at %s; moving back to %s would loosen"
           subject
           (Phase.to_string (Phase.of_index cur))
           (Phase.to_string ph))
    else if target = cur || Atomic.compare_and_set slot cur target then Ok ()
    else go ()
  in
  go ()

let reset_phases t = Array.iter (fun a -> Atomic.set a 0) t.phases

(* --- the decision ------------------------------------------------------- *)

let sep = "\x1f"

let of_bool b = if b then Pfm.Allow else Pfm.Deny

let deny_errno e (v : Pfm.verdict) =
  match v with Pfm.Allow -> None | Pfm.Deny | Pfm.Reject -> Some e

let adopt w snap =
  if snap != w.w_snap then begin
    w.w_snap <- snap;
    w.w_progs <- Snapshot.clone_progs snap
  end

let refill w hi snap req ~ph ~verdict ~errno =
  let s = w.w_slots.(hi) in
  s.f_sepoch <- snap.Snapshot.epoch;
  s.f_cepoch <- DC.epoch w.w_cache;
  s.f_phase <- ph;
  s.f_req <- Some req;
  s.f_verdict <- verdict;
  s.f_errno <- errno

let tally w hi (v : Pfm.verdict) =
  w.w_dec.(hi) <- w.w_dec.(hi) + 1;
  match v with
  | Pfm.Allow -> w.w_allow.(hi) <- w.w_allow.(hi) + 1
  | Pfm.Deny | Pfm.Reject -> w.w_deny.(hi) <- w.w_deny.(hi) + 1

let slot_valid w hi snap req ~ph =
  let s = w.w_slots.(hi) in
  s.f_sepoch = snap.Snapshot.epoch
  && s.f_cepoch = DC.epoch w.w_cache
  && s.f_phase = ph
  && (match s.f_req with Some r -> r == req | None -> false)

(* Serve one request on a worker against the currently published
   snapshot: front slot -> memo table -> engine, exactly the sequential
   dispatcher's ladder, but over domain-private structures.  [ph] is
   the subject's phase index, read once before the ladder: it keys the
   front slot and the memo args, so a phase transition strands exactly
   the transitioning subject's cached verdicts, and it selects the
   per-phase ladder inside the compiled programs (the leading dispatch
   field of the ctx). *)
let decide_with w engine snap req ~ph =
  adopt w snap;
  let hi = hook_index req in
  if slot_valid w hi snap req ~ph then begin
    let s = w.w_slots.(hi) in
    DC.record_hit w.w_cache w.w_ch.(hi);
    tally w hi s.f_verdict;
    { o_verdict = s.f_verdict; o_errno = s.f_errno;
      o_epoch = snap.Snapshot.epoch; o_phase = ph }
  end
  else begin
    let gens = w.w_gens.(hi) in
    gens.(0) <- snap.Snapshot.gens.(gens_index.(hi));
    let phase = Phase.of_index ph in
    let subject, args =
      match req with
      | Mount { subject; source; target; fstype; flags } ->
          ( subject,
            String.concat sep
              [ string_of_int ph; source; target; fstype;
                string_of_int (Compile.flags_mask flags) ] )
      | Umount { subject; target; mounted_by } ->
          ( subject,
            string_of_int ph ^ sep ^ target ^ sep ^ string_of_int mounted_by )
      | Bind { subject; port; proto; exe } ->
          ( subject,
            string_of_int ph ^ sep ^ string_of_int port ^ sep
            ^ Bindconf.proto_to_string proto ^ sep ^ exe )
      | Ppp_ioctl { subject; device; opt } ->
          ( subject,
            string_of_int ph ^ sep ^ device ^ sep
            ^ if Protego_net.Ppp.option_is_safe opt then "1" else "0" )
    in
    match DC.find w.w_cache w.w_ch.(hi) ~subject ~args ~gens with
    | Some (v, e) ->
        tally w hi v;
        refill w hi snap req ~ph ~verdict:v ~errno:e;
        { o_verdict = v; o_errno = e; o_epoch = snap.Snapshot.epoch;
          o_phase = ph }
    | None ->
        let v =
          match req, engine with
          | Mount { source; target; fstype; flags; _ }, `Pfm ->
              Pfm.eval w.w_progs.Snapshot.p_mount
                (Compile.mount_ctx ~phase:ph ~source ~target ~fstype ~flags)
          | Mount { source; target; fstype; flags; _ }, `Ref ->
              of_bool
                (Snapshot.ref_mount ~phase snap ~source ~target ~fstype ~flags)
          | Umount { subject; target; mounted_by }, `Pfm ->
              Pfm.eval w.w_progs.Snapshot.p_umount
                (Compile.umount_ctx ~phase:ph ~target ~mounted_by
                   ~ruid:subject)
          | Umount { subject; target; mounted_by }, `Ref ->
              of_bool
                (Snapshot.ref_umount ~phase snap ~target ~mounted_by
                   ~ruid:subject)
          | Bind { subject; port; proto; exe }, `Pfm ->
              Pfm.eval w.w_progs.Snapshot.p_bind
                (Compile.bind_ctx ~phase:ph ~port ~proto ~exe ~uid:subject)
          | Bind { subject; port; proto; exe }, `Ref ->
              of_bool
                (Snapshot.ref_bind ~phase snap ~port ~proto ~exe ~uid:subject)
          | Ppp_ioctl { device; opt; _ }, `Pfm ->
              Pfm.eval w.w_progs.Snapshot.p_ppp
                (Compile.ppp_ctx ~phase:ph ~device ~opt)
          | Ppp_ioctl { device; opt; _ }, `Ref ->
              of_bool (Snapshot.ref_ppp ~phase snap ~device ~opt)
        in
        let e =
          match req with
          | Bind _ -> deny_errno Errno.EACCES v
          | Mount _ | Umount _ | Ppp_ioctl _ -> deny_errno Errno.EPERM v
        in
        w.w_evals.(hi) <- w.w_evals.(hi) + 1;
        tally w hi v;
        DC.add w.w_cache w.w_ch.(hi) ~subject ~args ~gens ~verdict:v ~errno:e;
        refill w hi snap req ~ph ~verdict:v ~errno:e;
        { o_verdict = v; o_errno = e; o_epoch = snap.Snapshot.epoch;
          o_phase = ph }
  end

let request_phase t req =
  Atomic.get (phase_slot t (subject_of req))

let decide_one t w engine req =
  decide_with w engine (Snapshot.current t.pub) req ~ph:(request_phase t req)

let decide t req =
  ignore (refresh t);
  decide_one t t.workers.(0) t.engine req

(* --- audit spools ------------------------------------------------------- *)

type spool = {
  sp_seq : int array;
  sp_hook : int array;
  sp_subject : int array;
  sp_allowed : int array;
  sp_epoch : int array;
  mutable sp_len : int;
}

let make_spool cap =
  { sp_seq = Array.make (max cap 1) 0; sp_hook = Array.make (max cap 1) 0;
    sp_subject = Array.make (max cap 1) 0;
    sp_allowed = Array.make (max cap 1) 0;
    sp_epoch = Array.make (max cap 1) 0; sp_len = 0 }

(* Worker [w] of [d] owns exactly the sequence numbers congruent to
   [w] mod [d]. *)
let slice_len n d w = if w >= n then 0 else ((n - w - 1) / d) + 1

(* The phase a decision was served under rides inside the journal's
   existing request strings (a "<digit>US" prefix on one string field
   per record kind), so the binary record format is unchanged and old
   journals still decode — {!split_phase} reads absent stamps as phase
   0.  Replay peels the stamp off before re-evaluating. *)
let stamp_phase ph s = string_of_int ph ^ sep ^ s

let split_phase s =
  match String.index_opt s '\x1f' with
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some ph when ph >= 0 && ph < Phase.count ->
          (ph, String.sub s (i + 1) (String.length s - i - 1))
      | _ -> (0, s))
  | None -> (0, s)

(* Claim-and-encode one decision into the worker's journal term.  The
   ppp option collapses to its safe bit, which is the only thing the
   decision depends on; the flags list collapses to the compiled mask. *)
let journal_append ?(recorded = false) term ~run ~seq req (o : outcome) =
  let verdict =
    if recorded then 3
    else
      match o.o_verdict with Pfm.Allow -> 1 | Pfm.Deny -> 0 | Pfm.Reject -> 2
  in
  let errno = match o.o_errno with None -> 0 | Some e -> Errno.to_code e in
  let epoch = o.o_epoch in
  let ph = o.o_phase in
  match req with
  | Mount { subject; source; target; fstype; flags } ->
      J.append_mount term ~seq ~run ~epoch ~subject ~verdict ~errno
        ~source:(stamp_phase ph source) ~target ~fstype
        ~flags:(Compile.flags_mask flags)
  | Umount { subject; target; mounted_by } ->
      J.append_umount term ~seq ~run ~epoch ~subject ~verdict ~errno
        ~target:(stamp_phase ph target) ~mounted_by
  | Bind { subject; port; proto; exe } ->
      J.append_bind term ~seq ~run ~epoch ~subject ~verdict ~errno ~port
        ~proto:(match proto with Bindconf.Tcp -> 0 | Bindconf.Udp -> 1)
        ~exe:(stamp_phase ph exe)
  | Ppp_ioctl { subject; device; opt } ->
      J.append_ppp term ~seq ~run ~epoch ~subject ~verdict ~errno
        ~device:(stamp_phase ph device)
        ~safe:(Protego_net.Ppp.option_is_safe opt)

let merge_audit spools n d =
  Array.iteri
    (fun w sp ->
      if sp.sp_len <> slice_len n d w then
        failwith "Plane.run: audit spool length mismatch")
    spools;
  Array.init n (fun s ->
      let sp = spools.(s mod d) in
      let k = s / d in
      if sp.sp_seq.(k) <> s then failwith "Plane.run: audit spool out of order";
      { a_seq = s; a_hook = sp.sp_hook.(k); a_subject = sp.sp_subject.(k);
        a_allowed = sp.sp_allowed.(k) = 1; a_epoch = sp.sp_epoch.(k) })

(* --- the run loop ------------------------------------------------------- *)

let batch_len = 1024

let dummy_outcome =
  { o_verdict = Pfm.Deny; o_errno = None; o_epoch = -1; o_phase = 0 }

(* Process this worker's stride of [start, stop) in timed batches.
   [base] is the completed-count already published for earlier segments
   of the same run (one-domain runs are split at reload thresholds). *)
let worker_slice t w reqs ~start ~stop ~d ~engine ~clock ~collect ~outcomes
    ~spool ~base ~mode ~run_id =
  let i = ref start in
  let done_ = ref 0 in
  while !i < stop do
    let remaining = ((stop - !i - 1) / d) + 1 in
    let len = min batch_len remaining in
    let t0 = match clock with Some c -> c () | None -> 0 in
    for _ = 1 to len do
      let req = reqs.(!i) in
      let o =
        match clock with
        | Some c when w.w_sample land 63 = 0 ->
            let s0 = c () in
            let o = decide_one t w engine req in
            Trace.observe w.w_keys.(hook_index req) ~ns:(c () - s0);
            o
        | _ -> decide_one t w engine req
      in
      w.w_sample <- w.w_sample + 1;
      (* Record mode: the engine's true verdict was just computed (and
         cached); a would-deny is served as Allow while the journal
         keeps the distinct "recorded" tag.  The spool mirrors the
         served outcome, so the journal/spool differential still holds
         once verdict 3 decodes as allowed. *)
      let recorded = t.record && o.o_verdict <> Pfm.Allow in
      let o =
        if recorded then { o with o_verdict = Pfm.Allow; o_errno = None }
        else o
      in
      if collect then outcomes.(!i) <- o;
      (match mode with
       | `Off -> ()
       | `Journal -> journal_append ~recorded w.w_term ~run:run_id ~seq:!i req o
       | `Spool | `Both ->
           let k = spool.sp_len in
           spool.sp_seq.(k) <- !i;
           spool.sp_hook.(k) <- hook_index req;
           spool.sp_subject.(k) <- subject_of req;
           spool.sp_allowed.(k) <- (if o.o_verdict = Pfm.Allow then 1 else 0);
           spool.sp_epoch.(k) <- o.o_epoch;
           spool.sp_len <- k + 1;
           if mode = `Both then
             journal_append ~recorded w.w_term ~run:run_id ~seq:!i req o);
      i := !i + d
    done;
    (match clock with
     | Some c ->
         let per = float_of_int (c () - t0) /. float_of_int len in
         if per < w.w_min_op_ns then w.w_min_op_ns <- per
     | None -> ());
    done_ := !done_ + len;
    Atomic.set w.w_completed (base + !done_)
  done

(* Rebuild the submission-ordered audit view from the journal: stitch
   the run's records by their sequence stamps (zero lost, zero
   duplicated — checked, not assumed) and decode each into the same
   audit entry the spool merge produces. *)
let audit_of_stitched ds =
  Array.map
    (fun (dec : J.decision) ->
      let hook =
        match dec.J.d_req with
        | J.Mount _ -> 0
        | J.Umount _ -> 1
        | J.Bind _ -> 2
        | J.Ppp _ -> 3
      in
      { a_seq = dec.J.d_seq; a_hook = hook; a_subject = dec.J.d_subject;
        (* verdict 3 = "recorded": served as an allow under record mode *)
        a_allowed = (dec.J.d_verdict = 1 || dec.J.d_verdict = 3);
        a_epoch = dec.J.d_epoch })
    ds

let stitched_audit t ~run_id ~n =
  match J.stitch t.journal ~run:run_id ~base:0 ~count:n with
  | Error e -> failwith ("Plane.stitched_audit: " ^ e)
  | Ok ds -> audit_of_stitched ds

let run t ?(collect = true) ?(reloads = []) reqs =
  if t.running then failwith "Plane.run: a run is already in flight";
  ignore (refresh t);
  t.running <- true;
  Fun.protect ~finally:(fun () -> t.running <- false) @@ fun () ->
  let n = Array.length reqs in
  let d = t.domains in
  let ws = t.workers in
  let engine = t.engine in
  let clock = t.clock in
  let mode = t.audit in
  let run_id = t.runs in
  let outcomes = if collect then Array.make n dummy_outcome else [||] in
  let spools =
    match mode with
    | `Spool | `Both -> Array.init d (fun w -> make_spool (slice_len n d w))
    | `Off | `Journal -> Array.init d (fun _ -> make_spool 0)
  in
  Array.iter
    (fun w ->
      Atomic.set w.w_completed 0;
      w.w_min_op_ns <- infinity)
    ws;
  let reloads = List.sort (fun (a, _) (b, _) -> compare a b) reloads in
  let t0 = match clock with Some c -> c () | None -> 0 in
  if d = 1 then begin
    (* Inline and deterministic: split the stream at the reload
       thresholds, so an action fires exactly before the decision with
       its sequence number. *)
    let w = ws.(0) in
    let sp = spools.(0) in
    let seg start stop =
      if start < stop then
        worker_slice t w reqs ~start ~stop ~d:1 ~engine ~clock ~collect
          ~outcomes ~spool:sp ~base:start ~mode ~run_id
    in
    let pos = ref 0 in
    List.iter
      (fun (th, act) ->
        if th < n then begin
          seg !pos (max th !pos);
          pos := max th !pos;
          act ()
        end)
      reloads;
    seg !pos n
  end
  else begin
    let spawn w =
      Domain.spawn (fun () ->
          worker_slice t w reqs ~start:w.w_id ~stop:n ~d ~engine ~clock
            ~collect ~outcomes ~spool:spools.(w.w_id) ~base:0 ~mode ~run_id)
    in
    let doms = Array.map spawn ws in
    (* Coordinate reloads off the published progress counters; a
       threshold past the end of the stream never fires. *)
    let pending = ref reloads in
    let finished () =
      Array.for_all (fun w -> Atomic.get w.w_completed >= slice_len n d w.w_id) ws
    in
    while not (finished ()) do
      (match !pending with
       | (th, act) :: rest
         when Array.fold_left (fun acc w -> acc + Atomic.get w.w_completed) 0 ws
              >= th ->
           act ();
           pending := rest
       | _ -> ());
      Domain.cpu_relax ()
    done;
    Array.iter Domain.join doms
  end;
  let wall = match clock with Some c -> c () - t0 | None -> 0 in
  t.runs <- t.runs + 1;
  (* Records lost to wraparound (the run outgrew the journal, or enough
     un-rotated prior runs preceded it) are a capacity condition, not a
     correctness failure: surface them in [rr_audit_lost] rather than
     throwing away the whole run's computed outcomes.  Any stitch error
     with nothing dropped is real corruption and still aborts. *)
  let stitch_run () = J.stitch t.journal ~run:run_id ~base:0 ~count:n in
  let degrade e =
    if J.dropped t.journal > 0 then ([||], Some e)
    else failwith ("Plane.run: " ^ e)
  in
  let audit, audit_lost =
    match mode with
    | _ when not collect -> ([||], None)
    | `Off -> ([||], None)
    | `Spool -> (merge_audit spools n d, None)
    | `Journal -> (
        match stitch_run () with
        | Ok ds -> (audit_of_stitched ds, None)
        | Error e -> degrade e)
    | `Both -> (
        (* Differential oracle: the index-arithmetic spool merge and the
           stamp-driven journal stitch must reconstruct the exact same
           submission-ordered trail. *)
        let sp = merge_audit spools n d in
        match stitch_run () with
        | Ok ds ->
            if sp <> audit_of_stitched ds then
              failwith "Plane.run: journal/spool audit divergence";
            (sp, None)
        | Error e ->
            let _, lost = degrade e in
            (sp, lost))
  in
  { rr_outcomes = outcomes; rr_audit = audit; rr_audit_lost = audit_lost;
    rr_wall_ns = wall; rr_min_op_ns = Array.map (fun w -> w.w_min_op_ns) ws }

(* --- merged statistics and /proc -------------------------------------- *)

type hook_totals = {
  ht_decisions : int;
  ht_allow : int;
  ht_deny : int;
  ht_evals : int;
  ht_hits : int;
}

let hook_stats t =
  List.init hook_count (fun hi ->
      let sum f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers in
      let hits =
        sum (fun w ->
            let h = List.nth (DC.hook_stats w.w_cache) hi in
            h.DC.h_hits)
      in
      ( hook_name hi,
        { ht_decisions = sum (fun w -> w.w_dec.(hi));
          ht_allow = sum (fun w -> w.w_allow.(hi));
          ht_deny = sum (fun w -> w.w_deny.(hi));
          ht_evals = sum (fun w -> w.w_evals.(hi));
          ht_hits = hits } ))

(* Percentile over summed per-worker histograms, the same bucket-walk
   {!Trace.percentile} does on a single key. *)
let merged_pct buckets total ~pct =
  if total = 0 then 0
  else
    let need =
      let p = total * pct in
      (p / 100) + (if p mod 100 = 0 then 0 else 1)
    in
    let rec go i acc =
      if i >= Trace.bucket_count then Trace.bucket_upper (Trace.bucket_count - 1)
      else
        let acc = acc + buckets.(i) in
        if acc >= need then Trace.bucket_upper i else go (i + 1) acc
    in
    go 0 0

let merged_latency t hi =
  let buckets = Array.make Trace.bucket_count 0 in
  let total = ref 0 in
  Array.iter
    (fun w ->
      let k = w.w_keys.(hi) in
      let b = Trace.buckets k in
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) b;
      total := !total + k.Trace.k_count)
    t.workers;
  (!total, buckets)

let engine_name t = match t.engine with `Pfm -> "pfm" | `Ref -> "ref"

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "plane domains %d engine %s epoch %d runs %d\n" t.domains
       (engine_name t)
       (Snapshot.current t.pub).Snapshot.epoch
       t.runs);
  let js = J.stats t.journal in
  Buffer.add_string b
    (Printf.sprintf
       "audit mode %s records %d live %d dropped %d rotations %d\n"
       (audit_mode_name t.audit) js.J.s_records js.J.s_live js.J.s_dropped
       t.rotations);
  Buffer.add_string b
    (Printf.sprintf "record %s\n" (if t.record then "on" else "off"));
  Array.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf "worker %d decisions %d evals %d hits %d misses %d stale %d\n"
           w.w_id
           (Array.fold_left ( + ) 0 w.w_dec)
           (Array.fold_left ( + ) 0 w.w_evals)
           (DC.hits w.w_cache) (DC.misses w.w_cache)
           (DC.stale_evictions w.w_cache)))
    t.workers;
  List.iter
    (fun (name, ht) ->
      Buffer.add_string b
        (Printf.sprintf "hook %s decisions %d allow %d deny %d evals %d hits %d\n"
           name ht.ht_decisions ht.ht_allow ht.ht_deny ht.ht_evals ht.ht_hits))
    (hook_stats t);
  for hi = 0 to hook_count - 1 do
    let total, buckets = merged_latency t hi in
    if total > 0 then
      Buffer.add_string b
        (Printf.sprintf "latency hook %s count %d p50 %d p90 %d p99 %d\n"
           (hook_name hi) total
           (merged_pct buckets total ~pct:50)
           (merged_pct buckets total ~pct:90)
           (merged_pct buckets total ~pct:99))
  done;
  Buffer.contents b

let handle_write t contents =
  match String.trim contents with
  | "publish" ->
      ignore (publish t);
      Ok ()
  | "reset" ->
      if t.running then
        Error "plane: a run is in flight; retry reset after it completes"
      else begin
        set_domains t t.domains;
        t.runs <- 0;
        reset_phases t;
        reset_journal t;
        Ok ()
      end
  | "engine pfm" -> set_engine t `Pfm; Ok ()
  | "engine ref" -> set_engine t `Ref; Ok ()
  | "record on" | "record off" ->
      let on = String.trim contents = "record on" in
      if t.running then
        Error "plane: a run is in flight; retry record toggle after it completes"
      else begin
        t.record <- on;
        Ok ()
      end
  | "audit off" -> set_audit_mode t `Off; Ok ()
  | "audit spool" -> set_audit_mode t `Spool; Ok ()
  | "audit journal" -> set_audit_mode t `Journal; Ok ()
  | "audit both" -> set_audit_mode t `Both; Ok ()
  | other -> (
      match String.split_on_char ' ' other with
      | [ "domains"; ns ] -> (
          match int_of_string_opt ns with
          | Some _ when t.running ->
              Error "plane: a run is in flight; retry after it completes"
          | Some d when d >= 1 && d <= plane_max_domains t ->
              set_domains t d;
              Ok ()
          | _ ->
              Error
                (Printf.sprintf "plane: domains must be 1..%d"
                   (plane_max_domains t)))
      | [ "phase"; subj; name ] -> (
          match (int_of_string_opt subj, Phase.of_string name) with
          | Some subject, Some ph -> set_subject_phase t ~subject ph
          | _ ->
              Error
                (Printf.sprintf
                   "plane: phase takes a subject and one of setup|serving|steady"))
      | _ -> Error ("plane: unknown command: " ^ other))

let render_journal t =
  Printf.sprintf "journal mode %s rotations %d\n%s" (audit_mode_name t.audit)
    t.rotations
    (J.render_stats t.journal)

let handle_journal_write t contents =
  match String.trim contents with
  | "rotate" -> rotate_journal t; Ok ()
  | "reset" -> reset_journal t; Ok ()
  | other -> Error ("journal: unknown command: " ^ other)

let install_proc m t =
  let open Protego_kernel in
  let kt = Machine.kernel_task m in
  ignore (Machine.mkdir_p m kt "/proc/protego" ());
  ignore
    (Machine.add_vnode m kt ~path:"/proc/protego/plane" ~mode:0o600
       ~read:(fun _m _t -> Ok (render t))
       ~write:(fun m _t contents ->
         match handle_write t contents with
         | Ok () -> Ok ()
         | Error msg ->
             Ktypes.log_dmesg m "protego: %s" msg;
             Error Errno.EINVAL)
       ());
  ignore
    (Machine.add_vnode m kt ~path:"/proc/protego/journal" ~mode:0o600
       ~read:(fun _m _t -> Ok (render_journal t))
       ~write:(fun m _t contents ->
         match handle_journal_write t contents with
         | Ok () -> Ok ()
         | Error msg ->
             Ktypes.log_dmesg m "protego: %s" msg;
             Error Errno.EINVAL)
       ())

(* --- reference oracles -------------------------------------------------- *)

let request_oracle ?phase (st : PS.t) = function
  | Mount { source; target; fstype; flags; _ } ->
      PS.mount_decision ?phase st ~source ~target ~fstype ~flags
  | Umount { subject; target; mounted_by } ->
      PS.umount_decision ?phase st ~target ~mounted_by ~ruid:subject
  | Bind { subject; port; proto; exe } ->
      PS.bind_allowed ?phase st ~port ~proto ~exe ~uid:subject
  | Ppp_ioctl { device; opt; _ } ->
      PS.ppp_ioctl_decision ?phase st ~device ~opt

let snapshot_oracle ?phase snap = function
  | Mount { source; target; fstype; flags; _ } ->
      Snapshot.ref_mount ?phase snap ~source ~target ~fstype ~flags
  | Umount { subject; target; mounted_by } ->
      Snapshot.ref_umount ?phase snap ~target ~mounted_by ~ruid:subject
  | Bind { subject; port; proto; exe } ->
      Snapshot.ref_bind ?phase snap ~port ~proto ~exe ~uid:subject
  | Ppp_ioctl { device; opt; _ } -> Snapshot.ref_ppp ?phase snap ~device ~opt

let request_deny_errno = function
  | Bind _ -> Errno.EACCES
  | Mount _ | Umount _ | Ppp_ioctl _ -> Errno.EPERM

(* --- simulation hooks --------------------------------------------------- *)

let running t = t.running

let sim_begin t =
  if t.running then invalid_arg "Plane.sim_begin: a run is already in flight";
  t.running <- true;
  t.runs

let sim_end t =
  t.running <- false;
  t.runs <- t.runs + 1

let worker_of t i =
  if i < 0 || i >= t.domains then
    invalid_arg (Printf.sprintf "Plane: no such worker %d (domains %d)" i
                   t.domains);
  t.workers.(i)

let decide_on t ~worker req = decide_one t (worker_of t worker) t.engine req

let worker_snapshot t i = (worker_of t i).w_snap

let decide_against t ~worker snap req =
  decide_with (worker_of t worker) t.engine snap req ~ph:(request_phase t req)

let journal_decision t ~worker ~run ~seq req o =
  journal_append (worker_of t worker).w_term ~run ~seq req o

let worker_term t i = (worker_of t i).w_term
