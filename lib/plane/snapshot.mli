(** Immutable, epoch-stamped policy snapshots and their single-writer
    publication point — the RCU analogue the parallel decision plane
    reads through.

    A {!t} freezes everything a decision needs — the policy lists, the
    per-source generation vector, and the compiled PFM programs — into a
    value that is never mutated after {!freeze} returns.  Publication is
    one [Atomic.set] of a pointer ({!publish}); acquisition is one
    [Atomic.get] ({!current}).  Readers therefore never lock, never see
    a half-updated policy, and never observe generation/rule skew: a
    snapshot's programs were compiled from exactly the rules its
    generation vector stamps.  Memory-model details and the
    linearizability claim are in DESIGN.md §6. *)

module PS = Protego_core.Policy_state
module Pfm = Protego_filter.Pfm

(** The four compiled programs of the plane-served hooks.  The netfilter
    hook is deliberately absent: its chain lives on the machine, not in
    [Policy_state], so it stays on the sequential dispatcher. *)
type progs = {
  p_mount : Pfm.program;
  p_umount : Pfm.program;
  p_bind : Pfm.program;
  p_ppp : Pfm.program;
}

type t = private {
  epoch : int;        (** publication counter, 0 for the initial snapshot *)
  gens : int array;   (** generation vector at freeze, {!PS.source_index} order *)
  frozen : PS.t;      (** private copy of the live state; never mutated *)
  progs : progs;      (** compiled from [frozen] at freeze time *)
}

val freeze : epoch:int -> PS.t -> t
(** Copy the live state's fields (the field values are immutable, so
    aliasing them is a deep-enough copy), snapshot the generation
    vector, and compile the four programs. *)

val clone_progs : t -> progs
(** Per-domain copies of the compiled programs: the instruction arrays
    and dispatch tables are shared (read-only under evaluation), the
    mutable execution counters ([counters], [retired]) are fresh, so
    domains never write to a shared program. *)

val gen_for : t -> PS.source -> int
(** The frozen generation of one source. *)

(** {1 Reference oracles}

    The list-walking reference semantics evaluated against the frozen
    state — what the [ref] engine runs and what differential tests
    compare compiled verdicts to.  [?phase] is the subject's lifecycle
    phase: rules whose guard is inactive there are skipped, exactly as
    the compiled per-phase ladders do (default: no phase filtering,
    which coincides with {!Protego_base.Phase.initial} for tighten-only
    policies). *)

val ref_mount :
  ?phase:Protego_base.Phase.t -> t -> source:string -> target:string ->
  fstype:string -> flags:Protego_kernel.Ktypes.mount_flag list -> bool

val ref_umount :
  ?phase:Protego_base.Phase.t -> t -> target:string -> mounted_by:int ->
  ruid:int -> bool

val ref_bind :
  ?phase:Protego_base.Phase.t -> t -> port:int ->
  proto:Protego_policy.Bindconf.proto -> exe:string -> uid:int -> bool

val ref_ppp :
  ?phase:Protego_base.Phase.t -> t -> device:string ->
  opt:Protego_net.Ppp.option_ -> bool

(** {1 Publication} *)

type pub
(** The publication point: one atomic pointer to the current snapshot.
    Publication is single-writer — /proc writes and reload actions are
    serialized by the caller (in the simulated kernel they already are);
    readers are unrestricted. *)

val make : ?history:int -> PS.t -> pub
(** Freeze [st] at epoch 0 and publish it.  [history] (default 1024,
    min 1) bounds the publication history {!at_epoch} serves: only the
    newest [history] epochs are retained, so a reload-storm workload or
    a long-lived plane cannot grow memory without limit. *)

val current : pub -> t
(** The latest published snapshot — a single [Atomic.get]. *)

val at_epoch : pub -> int -> t option
(** The snapshot published at a given epoch, from the bounded
    publication history (the newest [history] epochs; [None] for evicted
    or unknown epochs — a replay tolerates this via
    [Replay.rp_missing_epochs]).  What lets a journal replay re-execute
    an epoch-stamped decision against exactly the policy that served
    it.  Like publication, history maintenance is single-writer;
    lookups are meant for quiescent replay, not mid-publish racing. *)

val publish : pub -> PS.t -> t
(** Build-then-swap: freeze [st] at [epoch (current pub) + 1], then
    atomically replace the pointer.  Returns the new snapshot.  Before
    freezing, performs the same physical-identity watch the sequential
    dispatcher does: a watched source (mounts, binds, ppp) whose field
    changed identity since the previous snapshot without a generation
    bump gets its generation bumped here, so stale per-domain cache
    entries can never be served under the new snapshot. *)

val stale : pub -> PS.t -> bool
(** Would {!publish} produce a snapshot with a different generation
    vector?  True when any source generation moved since the current
    snapshot froze, or a watched field changed physical identity. *)
