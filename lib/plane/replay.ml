module J = Protego_journal.Journal
module Errno = Protego_base.Errno
module Ktypes = Protego_kernel.Ktypes

type mismatch = {
  mm_seq : int;
  mm_field : string;
  mm_expected : string;
  mm_got : string;
}

type report = {
  rp_total : int;
  rp_matched : int;
  rp_mismatches : mismatch list;
  rp_missing_epochs : int list;
}

(* The journal stores the compiled flags mask (Pfm_compile.flags_mask);
   the reference oracle wants the flag list back.  Bit order is the
   compiler's: ro=1, nosuid=2, nodev=4, noexec=8. *)
let flag_bits =
  [ (Ktypes.Mf_readonly, 1); (Ktypes.Mf_nosuid, 2); (Ktypes.Mf_nodev, 4);
    (Ktypes.Mf_noexec, 8) ]

let flags_of_mask m =
  List.filter_map
    (fun (f, b) -> if m land b <> 0 then Some f else None)
    flag_bits

let verdict_name = function
  | 0 -> "deny"
  | 1 -> "allow"
  | 2 -> "reject"
  | v -> Printf.sprintf "verdict:%d" v

let errno_name = function
  | 0 -> "none"
  | c -> (
      match Errno.of_code c with
      | Some e -> Errno.to_string e
      | None -> Printf.sprintf "errno:%d" c)

(* Each record kind carries its served phase stamped inside one request
   string ({!Plane.stamp_phase}); peel it off and re-evaluate under
   exactly that phase, so a decision journaled across a phase
   transition replays against the phase that actually served it. *)
let expected_allow snap (dec : J.decision) =
  match dec.J.d_req with
  | J.Mount { source; target; fstype; flags } ->
      let ph, source = Plane.split_phase source in
      Snapshot.ref_mount ~phase:(Protego_base.Phase.of_index ph) snap ~source
        ~target ~fstype ~flags:(flags_of_mask flags)
  | J.Umount { target; mounted_by } ->
      let ph, target = Plane.split_phase target in
      Snapshot.ref_umount ~phase:(Protego_base.Phase.of_index ph) snap ~target
        ~mounted_by ~ruid:dec.J.d_subject
  | J.Bind { port; proto; exe } ->
      let ph, exe = Plane.split_phase exe in
      let proto =
        if proto = 1 then Protego_policy.Bindconf.Udp
        else Protego_policy.Bindconf.Tcp
      in
      Snapshot.ref_bind ~phase:(Protego_base.Phase.of_index ph) snap ~port
        ~proto ~exe ~uid:dec.J.d_subject
  | J.Ppp { device; safe } ->
      (* The ppp decision depends only on (device, option safety); any
         option of the recorded safety class reproduces it. *)
      let ph, device = Plane.split_phase device in
      let opt =
        if safe then Protego_net.Ppp.Accomp else Protego_net.Ppp.Default_route
      in
      Snapshot.ref_ppp ~phase:(Protego_base.Phase.of_index ph) snap ~device ~opt

let deny_errno (dec : J.decision) =
  match dec.J.d_req with
  | J.Bind _ -> Errno.to_code Errno.EACCES
  | J.Mount _ | J.Umount _ | J.Ppp _ -> Errno.to_code Errno.EPERM

let replay ~snapshot_of_epoch (ds : J.decision array) =
  let mismatches = ref [] in
  let missing = ref [] in
  let matched = ref 0 in
  Array.iter
    (fun (dec : J.decision) ->
      match snapshot_of_epoch dec.J.d_epoch with
      | None ->
          if not (List.mem dec.J.d_epoch !missing) then
            missing := dec.J.d_epoch :: !missing
      | Some snap ->
          let allow = expected_allow snap dec in
          let exp_verdict = if allow then 1 else 0 in
          let exp_errno = if allow then 0 else deny_errno dec in
          let ok = ref true in
          if dec.J.d_verdict <> exp_verdict then begin
            ok := false;
            mismatches :=
              { mm_seq = dec.J.d_seq; mm_field = "verdict";
                mm_expected = verdict_name exp_verdict;
                mm_got = verdict_name dec.J.d_verdict }
              :: !mismatches
          end;
          if dec.J.d_errno <> exp_errno then begin
            ok := false;
            mismatches :=
              { mm_seq = dec.J.d_seq; mm_field = "errno";
                mm_expected = errno_name exp_errno;
                mm_got = errno_name dec.J.d_errno }
              :: !mismatches
          end;
          if !ok then incr matched)
    ds;
  { rp_total = Array.length ds;
    rp_matched = !matched;
    rp_mismatches = List.rev !mismatches;
    rp_missing_epochs = List.rev !missing }

let replay_run plane ~run ~count =
  match J.stitch (Plane.journal plane) ~run ~base:0 ~count with
  | Error e -> failwith ("Replay.replay_run: " ^ e)
  | Ok ds -> replay ~snapshot_of_epoch:(Plane.snapshot_at plane) ds

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "replay total %d matched %d mismatches %d\n" r.rp_total
       r.rp_matched
       (List.length r.rp_mismatches));
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "mismatch seq %d field %s expected %s got %s\n"
           m.mm_seq m.mm_field m.mm_expected m.mm_got))
    r.rp_mismatches;
  List.iter
    (fun e ->
      Buffer.add_string b (Printf.sprintf "missing epoch %d\n" e))
    r.rp_missing_epochs;
  Buffer.contents b
