(** Total-order journal replay: re-execute journaled decisions against
    the epoch-stamped snapshots that served them and diff the outcome
    record-for-record.

    A journal {!Protego_journal.Journal.decision} carries everything a
    re-evaluation needs: the request arguments, the subject, and the
    epoch of the snapshot that produced the verdict.  Replay looks each
    epoch up in the plane's publication history
    ({!Snapshot.at_epoch}), evaluates the reference oracle of the
    matching hook, and compares verdict and errno to what the journal
    recorded.  Any mismatch means either a torn record the commit
    protocol failed to suppress, a decision served against a snapshot
    other than the one it stamped, or an engine/oracle divergence —
    all reportable, none silently absorbed. *)

module J = Protego_journal.Journal

type mismatch = {
  mm_seq : int;        (** submission index of the divergent record *)
  mm_field : string;   (** ["verdict"] or ["errno"] *)
  mm_expected : string;
  mm_got : string;
}

type report = {
  rp_total : int;      (** decisions replayed *)
  rp_matched : int;    (** decisions whose verdict and errno both matched *)
  rp_mismatches : mismatch list;  (** submission order *)
  rp_missing_epochs : int list;
      (** epochs stamped in the journal but absent from the snapshot
          history — their records are skipped, not counted as matched *)
}

val replay :
  snapshot_of_epoch:(int -> Snapshot.t option) -> J.decision array -> report
(** Re-evaluate every decision against the snapshot its epoch stamp
    names.  Verdict expectation comes from the reference oracle
    ([Snapshot.ref_*]); errno expectation is the hook's deny errno
    (EACCES for bind, EPERM otherwise) when denied, none when
    allowed. *)

val replay_run : Plane.t -> run:int -> count:int -> report
(** Stitch run [run] ([count] requests) out of the plane's journal and
    {!replay} it against the plane's snapshot history.  Raises
    [Failure] if the stitch finds missing or duplicated records. *)

val render : report -> string
(** Human-readable summary: one header line, then one line per mismatch
    and per missing epoch. *)
