(** The parallel decision plane: sharded multi-domain dispatch over
    epoch-published policy snapshots.

    The sequential dispatcher ({!Protego_core.Pfm_dispatch}) serves one
    caller at a time over global mutable state.  A real LSM answers the
    same hooks concurrently from every CPU; this module is that shape on
    OCaml 5 Domains.  Per worker domain: a private decision cache, a
    per-hook front slot keyed to the snapshot epoch, private compiled
    programs (counters and all), private filter/latency counters, and a
    private audit spool — so the warm path shares {e nothing} writable
    between domains.  The only cross-domain communication on a decision
    is one [Atomic.get] of the current {!Snapshot.t}.  Policy changes
    build a new snapshot off to the side and swap the pointer
    ({!publish}); in-flight decisions finish against whichever snapshot
    they acquired, so every verdict is consistent with exactly one
    published policy — never a torn mix (DESIGN.md §6).

    Audit: the plane's default sink is the lock-free binary journal
    ({!Protego_journal.Journal}) — each worker holds a private {e term}
    of the plane's journal and encodes every decision in place with one
    segment-granular atomic claim amortized over thousands of records;
    after a run the epoch/sequence stamps let {!Protego_journal.
    Journal.stitch} reconstruct the total submission order without a
    merge barrier (DESIGN.md §8).  The pre-journal columnar spool
    survives as a runtime-selectable fallback ([`Spool]) and as a
    differential oracle ([`Both] runs both sinks and fails the run on
    any divergence).  Requests are partitioned round-robin, so worker
    [w] of [d] owns exactly the sequence numbers congruent to [w] mod
    [d] — zero lost, zero duplicated, by construction (and by test). *)

module PS = Protego_core.Policy_state
module Pfm = Protego_filter.Pfm

(** One decision request.  Arguments mirror the LSM hook signatures; the
    [subject] is the caller's uid (ruid for umount).  Requests are
    compared by physical identity on the front-slot fast path, so
    generators should intern and reuse request values. *)
type request =
  | Mount of {
      subject : int;
      source : string;
      target : string;
      fstype : string;
      flags : Protego_kernel.Ktypes.mount_flag list;
    }
  | Umount of { subject : int; target : string; mounted_by : int }
  | Bind of {
      subject : int;
      port : int;
      proto : Protego_policy.Bindconf.proto;
      exe : string;
    }
  | Ppp_ioctl of { subject : int; device : string; opt : Protego_net.Ppp.option_ }

val hook_count : int
(** 4: mount, umount, bind, ppp_ioctl. *)

val hook_index : request -> int
val hook_name : int -> string

val subject_of : request -> int
(** The request's subject uid — the identity the per-subject lifecycle
    phase table is keyed by. *)

type outcome = {
  o_verdict : Pfm.verdict;
  o_errno : Protego_base.Errno.t option;
  o_epoch : int;  (** epoch of the snapshot that served the decision *)
  o_phase : int;
      (** {!Protego_base.Phase.index} of the subject's lifecycle phase
          the decision was served under *)
}

type audit_entry = {
  a_seq : int;  (** submission index of the request *)
  a_hook : int;  (** {!hook_index} *)
  a_subject : int;
  a_allowed : bool;
  a_epoch : int;
}

type run_result = {
  rr_outcomes : outcome array;
      (** one per request, submission order; [[||]] when collection was
          disabled *)
  rr_audit : audit_entry array;
      (** merged spools, strictly ascending [a_seq] = 0..n-1; [[||]]
          when the journal trail degraded (see [rr_audit_lost]) *)
  rr_audit_lost : string option;
      (** [Some reason] when the run's journaled trail could not be
          stitched because wraparound overwrote part of it (the run
          outgrew the journal, or un-rotated prior runs filled it);
          outcomes are still complete.  [None] for a complete trail. *)
  rr_wall_ns : int;  (** whole-run wall time; 0 without a clock *)
  rr_min_op_ns : float array;
      (** per worker: minimum per-decision cost over timed batches of
          its slice — the contention-free cost of its warm path.
          [infinity] without a clock or for an empty slice. *)
}

val capacity_per_sec : run_result -> float
(** Aggregate decision capacity: sum over workers of [1e9 /. min_op_ns]
    — what the plane would sustain given a core per domain.  The batch
    minimum filters out descheduled batches, so on fewer cores than
    domains this measures contention-freedom rather than wall-clock
    parallelism; methodology in DESIGN.md §6.  [0.] without a clock. *)

type audit_mode = [ `Off | `Spool | `Journal | `Both ]
(** What records decisions during {!run}: nothing, the legacy columnar
    spool, the binary journal (default), or both (differential oracle —
    the run fails if the two sinks disagree record-for-record). *)

val audit_mode_name : audit_mode -> string

type t

val create :
  ?domains:int -> ?journal_seg_bytes:int -> ?journal_segments:int ->
  ?cache_capacity:int -> PS.t -> t
(** A plane over the live state, initial snapshot published at epoch 0.
    [domains] defaults to 1 and is clamped to
    [1..min max_domains journal_segments] — each worker's journal term
    owns a whole segment, so the journal geometry bounds the domain
    count.  [journal_seg_bytes] (default 256 KiB) and [journal_segments]
    (default 32) size the audit journal; both must be powers of two
    (see {!Protego_journal.Journal.create}).  [cache_capacity] sizes
    each worker's decision cache (default
    {!Protego_cache.Decision_cache.create}'s own default); it sticks
    across {!set_domains} worker rebuilds — the knob [protego-tune]
    sweeps. *)

val max_domains : int

val plane_max_domains : t -> int
(** [min max_domains (journal segments)]: the effective domain ceiling
    of this plane's geometry. *)

val domains : t -> int
val set_domains : t -> int -> unit
(** Clamped to [1..plane_max_domains]; workers are recreated (their
    caches and counters reset) and the replaced workers' journal terms
    are retired (padded out and deregistered), so repeated domain
    changes neither inflate journal stats nor pin half-filled
    segments.  Raises [Invalid_argument] while a run (real or
    simulated) is in flight — racing a worker-array swap against live
    workers would hand decisions to orphaned terms. *)

val engine : t -> [ `Pfm | `Ref ]
val set_engine : t -> [ `Pfm | `Ref ] -> unit

val set_clock : t -> (unit -> int) -> unit
(** Install a monotonic nanosecond clock: arms wall/batch timing and the
    per-worker latency histograms (sampled, 1 in 64 decisions). *)

val state : t -> PS.t
val current : t -> Snapshot.t
val publish : t -> Snapshot.t
(** Unconditionally freeze the live state and swap it in. *)

val refresh : t -> Snapshot.t
(** {!publish} only if the live state drifted from the current snapshot
    ({!Snapshot.stale}); otherwise the current snapshot unchanged. *)

val decide : t -> request -> outcome
(** One decision on worker 0, after a {!refresh} — the deterministic
    sequential entry point tests and the /proc surface use.  Does not
    spool audit records. *)

val run :
  t -> ?collect:bool -> ?reloads:(int * (unit -> unit)) list ->
  request array -> run_result
(** Drive the whole request array through the plane, round-robin across
    [domains t] workers (request [i] goes to worker [i mod d]).  With
    one domain the run is inline and deterministic; otherwise one
    OCaml domain is spawned per worker.  [collect:false] skips the
    outcome array and the [rr_audit] reconstruction (bench mode; the
    configured audit sinks still record every decision — use
    {!stitched_audit} to rebuild the trail afterwards).  [reloads] are [(threshold, action)]
    pairs: each action fires once, off the coordinating domain, as soon
    as the total completed-decision count reaches its threshold (with
    one domain: exactly at that submission index).  Actions typically
    mutate the live state and {!publish}. *)

val runs : t -> int
(** Completed {!run} invocations since creation/reset. *)

(** {1 Per-subject lifecycle phases}

    The plane's analogue of the LSM's per-task phase
    (DESIGN.md §11): a fixed table of atomics indexed
    [subject mod phase_slots], read once per decision.  The phase keys
    the front slot and the memo-table args and selects the per-phase
    ladder in the compiled programs, so a transition strands exactly
    the transitioning subject's cached verdicts — no flush, no epoch
    bump. *)

val subject_phase : t -> subject:int -> Protego_base.Phase.t

val set_subject_phase :
  t -> subject:int -> Protego_base.Phase.t -> (unit, string) result
(** Tighten-only join: the subject's phase advances to the given phase
    or stays put.  An attempted move {e backward} returns [Error] and
    changes nothing — the caller (the LSM, the /proc surface) maps it
    to EPERM plus an audit record.  Safe to call from a reload action
    while a run is in flight: workers pick the new phase up on their
    next decision for that subject. *)

val reset_phases : t -> unit
(** Every subject back to {!Protego_base.Phase.initial} — part of the
    ["reset"] /proc command, for between-run reuse only. *)

val stamp_phase : int -> string -> string
(** The journal encoding of a served phase: a ["<index>\x1f"] prefix
    on one request-string field per record kind (mount source, umount
    target, bind exe, ppp device) — the binary record format is
    unchanged. *)

val split_phase : string -> int * string
(** Peel a {!stamp_phase} prefix off; an unstamped string (an old
    journal) reads as phase 0 with the string intact. *)

(** {1 Reference oracles}

    The list-walking reference semantics over a whole {!request} — the
    per-hook decision procedures bundled behind the request variant, for
    differential tests and the simulator's property checker. *)

val request_oracle : ?phase:Protego_base.Phase.t -> PS.t -> request -> bool
(** Evaluate the request against the {e live} state; [?phase] filters
    rules to those active in the subject's lifecycle phase. *)

val snapshot_oracle :
  ?phase:Protego_base.Phase.t -> Snapshot.t -> request -> bool
(** Evaluate the request against a frozen snapshot — what
    [always (verdict = snapshot_at(epoch) oracle verdict)] checks. *)

val request_deny_errno : request -> Protego_base.Errno.t
(** The errno a denial of this request carries: [EACCES] for bind,
    [EPERM] for the rest. *)

(** {1 Simulation hooks}

    The deterministic simulator ({!Protego_sim.Sim}) drives the plane's
    workers one decision at a time from a single domain, so every
    interleaving is a scheduler choice rather than a thread race.  These
    entry points expose exactly the per-worker steps {!run} performs
    internally; they must only be called between {!sim_begin} and
    {!sim_end}, never concurrently with {!run}. *)

val running : t -> bool
(** A run — real ({!run}) or simulated ({!sim_begin}) — is in flight. *)

val sim_begin : t -> int
(** Mark a simulated run in flight and return its run id (the stamp
    {!decide_on} outcomes should be journaled under).  Raises
    [Invalid_argument] if a run is already in flight. *)

val sim_end : t -> unit
(** End the simulated run and count it in {!runs}. *)

val decide_on : t -> worker:int -> request -> outcome
(** One decision on the given worker against the currently published
    snapshot — the exact ladder (front slot, memo table, engine) a run
    step executes, without the surrounding refresh.  Raises
    [Invalid_argument] for a worker outside [0..domains-1]. *)

val worker_snapshot : t -> int -> Snapshot.t
(** The snapshot the worker last adopted — possibly older than
    {!current} if publications happened since its last decision. *)

val decide_against : t -> worker:int -> Snapshot.t -> request -> outcome
(** Like {!decide_on} but against an explicit snapshot — the simulator's
    stale-read fault injection point. *)

val journal_decision :
  t -> worker:int -> run:int -> seq:int -> request -> outcome -> unit
(** Claim-and-encode one decision into the worker's journal term, as a
    run's audit step does.  Raises [Failure] on writer overrun. *)

val worker_term : t -> int -> Protego_journal.Journal.term
(** The worker's journal write handle — the simulator's crash injection
    leaves an unpadded claim on it to exercise torn-tail recovery. *)

(** {1 Audit journal} *)

val audit_mode : t -> audit_mode
val set_audit_mode : t -> audit_mode -> unit

val record_mode : t -> bool

val set_record_mode : t -> bool -> unit
(** Permissive record mode.  While on, a request the engine would deny
    or reject is {e served} as an allow (outcomes, spool) but journaled
    with the distinct verdict code 3 ("recorded") — the raw material
    the policy synthesizer generalizes from.  Engine caches keep the
    true verdicts, so toggling record off needs no invalidation.
    @raise Invalid_argument if a run is in flight. *)

val journal : t -> Protego_journal.Journal.t
(** The plane's current journal (replaced by {!rotate_journal}). *)

val rotations : t -> int
(** Journal rotations since creation/reset. *)

val rotate_journal : t -> unit
(** Swap in a fresh journal of the same geometry and re-attach every
    worker's term to it; the old journal is dropped.  Counted by
    {!rotations}. *)

val reset_journal : t -> unit
(** {!rotate_journal} and zero the rotation counter. *)

val snapshot_at : t -> int -> Snapshot.t option
(** The snapshot published at a given epoch ({!Snapshot.at_epoch}) —
    what a journal replay evaluates epoch-stamped decisions against. *)

val stitched_audit : t -> run_id:int -> n:int -> audit_entry array
(** Reconstruct the audit trail of run [run_id] ([n] requests) from the
    journal by total-order stitch.  Raises [Failure] if any record of
    the run is missing or duplicated (e.g. after {!rotate_journal}).
    {!run} itself never raises for wraparound loss — it degrades and
    reports via [rr_audit_lost]. *)

(** {1 Merged statistics and /proc/protego/plane} *)

type hook_totals = {
  ht_decisions : int;
  ht_allow : int;
  ht_deny : int;
  ht_evals : int;  (** engine evaluations (cache misses) *)
  ht_hits : int;   (** decision-cache + front-slot hits *)
}

val hook_stats : t -> (string * hook_totals) list
(** Summed across workers, hook order. *)

val render : t -> string
(** {v
    plane domains <d> engine <pfm|ref> epoch <e> runs <n>
    audit mode <m> records <n> live <n> dropped <n> rotations <n>
    worker <i> decisions <n> evals <n> hits <n> misses <n> stale <n>
    hook <name> decisions <n> allow <n> deny <n> evals <n> hits <n>
    latency hook <name> count <n> p50 <ns> p90 <ns> p99 <ns>
    v}
    [latency] lines only for hooks with sampled observations (needs a
    clock); histograms are summed across workers before the percentile
    walk. *)

val handle_write : t -> string -> (unit, string) result
(** ["domains <n>"], ["engine pfm|ref"], ["publish"],
    ["audit off|spool|journal|both"],
    ["phase <subject> setup|serving|steady"] (tighten-only; loosening
    errors), ["reset"] (zero counters, drop caches, phases back to
    initial, fresh journal); anything else errors. *)

val render_journal : t -> string
(** The /proc/protego/journal read image: a
    [journal mode <m> rotations <n>] line, then
    {!Protego_journal.Journal.render_stats}. *)

val handle_journal_write : t -> string -> (unit, string) result
(** ["rotate"], ["reset"]; anything else errors. *)

val install_proc :
  Protego_kernel.Ktypes.machine -> t -> unit
(** Install [/proc/protego/plane] and [/proc/protego/journal] (both
    root-only, 0600): reads render, writes dispatch to {!handle_write}
    / {!handle_journal_write} (EINVAL + dmesg on parse errors). *)
