type verdict = Accept | Drop | Reject
type chain = Input | Output | Forward

type match_ =
  | Proto of Packet.proto
  | Src of Ipaddr.Cidr.t
  | Dst of Ipaddr.Cidr.t
  | Dst_port of { lo : int; hi : int }
  | Src_port of { lo : int; hi : int }
  | Icmp_type of Packet.icmp_type
  | Tcp_syn
  | Owner_uid of int
  | Origin_raw
  | Origin_packet

type rule = { matches : match_ list; target : verdict; comment : string }

type t = {
  mutable input : rule list;
  mutable output : rule list;
  mutable forward : rule list;
  mutable input_policy : verdict;
  mutable output_policy : verdict;
  mutable forward_policy : verdict;
  mutable output_override :
    (Packet.t -> origin:Packet.origin -> verdict) option;
}

let create ?(input_policy = Accept) ?(output_policy = Accept)
    ?(forward_policy = Accept) () =
  { input = []; output = []; forward = [];
    input_policy; output_policy; forward_policy; output_override = None }

let set_output_override t f = t.output_override <- f

let append t chain rule =
  match chain with
  | Input -> t.input <- t.input @ [ rule ]
  | Output -> t.output <- t.output @ [ rule ]
  | Forward -> t.forward <- t.forward @ [ rule ]

let insert t chain rule =
  match chain with
  | Input -> t.input <- rule :: t.input
  | Output -> t.output <- rule :: t.output
  | Forward -> t.forward <- rule :: t.forward

let flush t = function
  | Input -> t.input <- []
  | Output -> t.output <- []
  | Forward -> t.forward <- []

let rules t = function
  | Input -> t.input
  | Output -> t.output
  | Forward -> t.forward

let set_policy t chain v =
  match chain with
  | Input -> t.input_policy <- v
  | Output -> t.output_policy <- v
  | Forward -> t.forward_policy <- v

let policy t = function
  | Input -> t.input_policy
  | Output -> t.output_policy
  | Forward -> t.forward_policy

let rule_count t =
  List.length t.input + List.length t.output + List.length t.forward

let origin_uid = function
  | Packet.Kernel_stack -> None
  | Packet.Raw_app { uid } | Packet.Packet_app { uid } -> Some uid

let matches_packet m (pkt : Packet.t) ~origin =
  match m with
  | Proto p -> Packet.proto_of_transport pkt.transport = p
  | Src cidr -> Ipaddr.Cidr.mem pkt.src cidr
  | Dst cidr -> Ipaddr.Cidr.mem pkt.dst cidr
  | Dst_port { lo; hi } -> (
      match Packet.dst_port pkt with Some p -> p >= lo && p <= hi | None -> false)
  | Src_port { lo; hi } -> (
      match Packet.src_port pkt with Some p -> p >= lo && p <= hi | None -> false)
  | Icmp_type ty -> (
      match pkt.transport with
      | Packet.Icmp_msg { icmp_type; _ } -> icmp_type = ty
      | Packet.Tcp_seg _ | Packet.Udp_dgram _ | Packet.Raw_payload _ -> false)
  | Tcp_syn -> (
      match pkt.transport with
      | Packet.Tcp_seg { syn; payload; _ } -> syn && payload = ""
      | Packet.Icmp_msg _ | Packet.Udp_dgram _ | Packet.Raw_payload _ -> false)
  | Owner_uid uid -> ( match origin_uid origin with Some u -> u = uid | None -> false)
  | Origin_raw -> ( match origin with Packet.Raw_app _ -> true | _ -> false)
  | Origin_packet -> ( match origin with Packet.Packet_app _ -> true | _ -> false)

let walk t chain pkt ~origin =
  let chain_rules = rules t chain in
  let rec go = function
    | [] -> policy t chain
    | r :: rest ->
        if List.for_all (fun m -> matches_packet m pkt ~origin) r.matches then r.target
        else go rest
  in
  go chain_rules

let eval t chain pkt ~origin =
  match (chain, t.output_override) with
  | Output, Some f -> f pkt ~origin
  | (Output | Input | Forward), _ -> walk t chain pkt ~origin

let verdict_to_string = function
  | Accept -> "ACCEPT"
  | Drop -> "DROP"
  | Reject -> "REJECT"

let verdict_of_string = function
  | "ACCEPT" -> Some Accept
  | "DROP" -> Some Drop
  | "REJECT" -> Some Reject
  | _ -> None

let match_to_spec = function
  | Proto p -> Printf.sprintf "-p %s" (Packet.proto_to_string p)
  | Src c -> Printf.sprintf "-s %s" (Ipaddr.Cidr.to_string c)
  | Dst c -> Printf.sprintf "-d %s" (Ipaddr.Cidr.to_string c)
  | Dst_port { lo; hi } ->
      if lo = hi then Printf.sprintf "--dport %d" lo
      else Printf.sprintf "--dport %d:%d" lo hi
  | Src_port { lo; hi } ->
      if lo = hi then Printf.sprintf "--sport %d" lo
      else Printf.sprintf "--sport %d:%d" lo hi
  | Icmp_type ty -> Printf.sprintf "--icmp-type %s" (Packet.icmp_type_to_string ty)
  | Tcp_syn -> "--syn"
  | Owner_uid uid -> Printf.sprintf "--uid-owner %d" uid
  | Origin_raw -> "--origin raw"
  | Origin_packet -> "--origin packet"

let rule_to_spec r =
  let matches = List.map match_to_spec r.matches in
  let base = String.concat " " (matches @ [ "-j"; verdict_to_string r.target ]) in
  if String.equal r.comment "" then base else base ^ " # " ^ r.comment

let pp_rule ppf r = Format.pp_print_string ppf (rule_to_spec r)

let parse_port_range s =
  match String.index_opt s ':' with
  | None ->
      Option.map (fun p -> (p, p)) (int_of_string_opt s)
  | Some i -> (
      let lo = String.sub s 0 i and hi = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _, _ -> None)

let rule_of_spec spec =
  let spec, comment =
    match String.index_opt spec '#' with
    | None -> (spec, "")
    | Some i ->
        ( String.sub spec 0 i,
          String.trim (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let tokens =
    String.split_on_char ' ' spec |> List.filter (fun s -> s <> "")
  in
  let rec parse matches target = function
    | [] -> (
        match target with
        | Some t -> Ok { matches = List.rev matches; target = t; comment }
        | None -> Error "missing -j target")
    | "-p" :: v :: rest -> (
        match Packet.proto_of_string v with
        | Some p -> parse (Proto p :: matches) target rest
        | None -> Error ("bad protocol: " ^ v))
    | "-s" :: v :: rest -> (
        match Ipaddr.Cidr.of_string v with
        | Some c -> parse (Src c :: matches) target rest
        | None -> Error ("bad source prefix: " ^ v))
    | "-d" :: v :: rest -> (
        match Ipaddr.Cidr.of_string v with
        | Some c -> parse (Dst c :: matches) target rest
        | None -> Error ("bad destination prefix: " ^ v))
    | "--dport" :: v :: rest -> (
        match parse_port_range v with
        | Some (lo, hi) -> parse (Dst_port { lo; hi } :: matches) target rest
        | None -> Error ("bad port range: " ^ v))
    | "--sport" :: v :: rest -> (
        match parse_port_range v with
        | Some (lo, hi) -> parse (Src_port { lo; hi } :: matches) target rest
        | None -> Error ("bad port range: " ^ v))
    | "--syn" :: rest -> parse (Tcp_syn :: matches) target rest
    | "--icmp-type" :: v :: rest -> (
        match Packet.icmp_type_of_string v with
        | Some ty -> parse (Icmp_type ty :: matches) target rest
        | None -> Error ("bad icmp type: " ^ v))
    | "--uid-owner" :: v :: rest -> (
        match int_of_string_opt v with
        | Some uid -> parse (Owner_uid uid :: matches) target rest
        | None -> Error ("bad uid: " ^ v))
    | "--origin" :: "raw" :: rest -> parse (Origin_raw :: matches) target rest
    | "--origin" :: "packet" :: rest -> parse (Origin_packet :: matches) target rest
    | "-j" :: v :: rest -> (
        match verdict_of_string v with
        | Some t -> parse matches (Some t) rest
        | None -> Error ("bad target: " ^ v))
    | tok :: _ -> Error ("unknown token: " ^ tok)
  in
  parse [] None tokens
