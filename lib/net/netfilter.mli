(** Netfilter: packet-filtering tables, chains, rules and verdicts.

    Protego's §4.1.1 extension adds an [Origin_raw] / [Origin_packet] match so
    that rules can apply only to packets whose headers were hand-built by an
    unprivileged application over a raw or packet socket.  The stock matches
    (protocol, addresses, ports, owner) follow iptables semantics: a rule
    fires when all its matches hold; the first firing rule's target is the
    verdict; otherwise the chain's policy applies. *)

type verdict = Accept | Drop | Reject

type chain = Input | Output | Forward

type match_ =
  | Proto of Packet.proto
  | Src of Ipaddr.Cidr.t
  | Dst of Ipaddr.Cidr.t
  | Dst_port of { lo : int; hi : int }
  | Src_port of { lo : int; hi : int }
  | Icmp_type of Packet.icmp_type
  | Tcp_syn       (** TCP segments with only SYN set (tcptraceroute probes) *)
  | Owner_uid of int
  | Origin_raw     (** Protego extension: packet from an unprivileged raw socket *)
  | Origin_packet  (** Protego extension: packet from an unprivileged packet socket *)

type rule = { matches : match_ list; target : verdict; comment : string }

type t
(** One netfilter table (the simulator models the [filter] table). *)

val create : ?input_policy:verdict -> ?output_policy:verdict ->
  ?forward_policy:verdict -> unit -> t

val append : t -> chain -> rule -> unit
val insert : t -> chain -> rule -> unit
(** [insert] puts the rule at the head of the chain (iptables -I). *)

val flush : t -> chain -> unit
val rules : t -> chain -> rule list
val set_policy : t -> chain -> verdict -> unit
val policy : t -> chain -> verdict
val rule_count : t -> int

val matches_packet : match_ -> Packet.t -> origin:Packet.origin -> bool

val eval : t -> chain -> Packet.t -> origin:Packet.origin -> verdict
(** Walk the chain; first rule whose matches all hold decides.  On the
    [Output] chain, an installed override (see {!set_output_override})
    takes the place of the walk. *)

val walk : t -> chain -> Packet.t -> origin:Packet.origin -> verdict
(** The raw reference walk, never routed through the override.  This is
    the oracle the compiled filter-machine path is differentially tested
    against. *)

val set_output_override :
  t -> (Packet.t -> origin:Packet.origin -> verdict) option -> unit
(** Interpose on [Output]-chain evaluation.  Protego installs its
    filter-machine dispatcher here so the egress hot path runs compiled
    programs; the override must be behaviourally identical to {!walk}. *)

val pp_rule : Format.formatter -> rule -> unit
val rule_to_spec : rule -> string
(** iptables-save-like one-line form, parseable by {!rule_of_spec}. *)

val rule_of_spec : string -> (rule, string) result
(** Parse a specification such as
    ["-p icmp --icmp-type echo-request --origin raw -j ACCEPT # ping"]. *)
