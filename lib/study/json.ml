type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Integers print without a fractional part so the report stays readable
   (latencies and counts are integral).  Other values are measurements —
   nanosecond timings and ratios where 17 significant digits are pure
   run-to-run noise that churns every committed baseline diff — so they
   keep three decimals, falling back to %.6g for magnitudes where three
   decimals would collapse to zero (tiny rates must stay non-zero for
   the report validator). *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 0.001 then Printf.sprintf "%.3f" f
  else Printf.sprintf "%.6g" f

let to_string ?(indent = 2) t =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s -> Buffer.add_char b '"'; Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            go (depth + 1) item)
          items;
        Buffer.add_char b '\n'; pad (depth * indent); Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            Buffer.add_char b '"'; Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char b '\n'; pad (depth * indent); Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                  pos := !pos + 4;
                  (* Only BMP code points below 0x80 render as a byte;
                     others keep a readable replacement — the report
                     never emits them. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                  go ())
          | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail ("bad number: " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json: at %d: %s" at msg)

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path keys t =
  List.fold_left
    (fun acc k -> match acc with Some v -> member k v | None -> None)
    (Some t) keys

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List items -> items | _ -> []
let num f = Num f
