(** A minimal JSON tree, printer and parser.

    The repository has no JSON dependency, and the bench report
    ({!Bench_report}) plus the CI regression gate only need a small,
    strict subset: this module implements RFC 8259 values with decimal
    numbers, [\uXXXX]-free string escapes on output (inputs may use
    them), and no streaming.  It is not a general-purpose JSON library
    and does not try to be one. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with [indent] spaces per level (default 2); a trailing
    newline is not added. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage, unterminated
    literals and unknown escapes are errors with a character offset. *)

(** {1 Accessors}

    All return [None] (or [[]]) on shape mismatch rather than raising —
    the CI gate reports missing keys itself. *)

val member : string -> t -> t option
(** Key lookup in an [Obj]. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list
(** The elements of a [List]; [[]] for anything else. *)

val num : float -> t
(** [Num], for symmetry in builders. *)
