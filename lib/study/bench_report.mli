(** The machine-readable bench report ([BENCH_protego.json]).

    [bench/main.exe --json] emits one of these; [bin/bench_gate.exe]
    validates it structurally and compares it against the committed
    [bench/baseline.json].  The schema is versioned so the gate can
    refuse a report it does not understand instead of silently passing.

    Shape (schema version {!schema_version}):
    {v
    { "schema_version": 1,
      "tool": "protego-bench",
      "environment": { "ocaml_version": "5.1.1",
                       "recommended_domain_count": "8", ... },
      "scenarios": [ { "name": "filter:mount",
                       "metrics": { "ref_ns": 410.2, "pfm_ns": 217.8,
                                    "speedup": 1.88 } }, ... ],
      "latency":   [ { "hook": "mount", "engine": "cache", "count": 4096,
                       "p50_ns": 15, "p90_ns": 31, "p99_ns": 63,
                       "max_ns": 180 }, ... ],
      "cache":     { "hits": 4095, "misses": 1, "hit_ratio": 0.9997,
                     "stale_evictions": 0, "capacity_evictions": 0 } }
    v}
    Metric names ending in [_ns] are per-operation latencies in
    nanoseconds — the regression gate compares exactly those; ratios
    ([speedup], [hit_ratio]) and counts are informational. *)

val schema_version : int
(** 1. *)

type scenario = {
  sc_name : string;                   (** e.g. ["filter:mount"], ["cache:mount"] *)
  sc_metrics : (string * float) list; (** name -> value; [*_ns] are gated *)
}

type latency_row = {
  lt_hook : string;
  lt_engine : string;
  lt_count : int;
  lt_p50 : int;
  lt_p90 : int;
  lt_p99 : int;
  lt_max : int;
}

type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_hit_ratio : float;               (** hits / lookups; 0 when no lookups *)
  cs_stale : int;
  cs_capacity : int;
}

type t = {
  scenarios : scenario list;
  latency : latency_row list;
  cache : cache_stats;
  environment : (string * string) list;
      (** free-form provenance for the run ([ocaml_version],
          [recommended_domain_count], plane domain counts, ...);
          informational — never gated, optional on read (reports
          predating the key load as [[]]) *)
}

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Shape check only (schema version, required keys, field types);
    {!validate} adds the semantic checks. *)

val validate : t -> (unit, string list) result
(** The structural assertions CI runs on a freshly generated report:
    at least one scenario; every metric finite and non-negative; every
    [*_ns] metric strictly positive; latency rows non-empty with
    positive counts and [p50 <= p90 <= p99 <= max]; cache hit ratio in
    [0..1]. *)

val compare_baseline :
  current:t -> baseline:t -> tolerance:float -> (unit, string list) result
(** The regression gate: every [*_ns] metric in [baseline] must exist
    in [current] and satisfy [current <= tolerance * baseline].
    Metrics absent from the baseline (new scenarios) pass — the
    baseline ratchets forward when it is regenerated, not here. *)

val load_file : string -> (t, string) result
(** Read + parse + {!of_json}. *)
