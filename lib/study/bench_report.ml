let schema_version = 1

type scenario = {
  sc_name : string;
  sc_metrics : (string * float) list;
}

type latency_row = {
  lt_hook : string;
  lt_engine : string;
  lt_count : int;
  lt_p50 : int;
  lt_p90 : int;
  lt_p99 : int;
  lt_max : int;
}

type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_hit_ratio : float;
  cs_stale : int;
  cs_capacity : int;
}

type t = {
  scenarios : scenario list;
  latency : latency_row list;
  cache : cache_stats;
  environment : (string * string) list;
}

(* --- JSON --------------------------------------------------------------- *)

let to_json t =
  let scenario sc =
    Json.Obj
      [ ("name", Json.Str sc.sc_name);
        ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) sc.sc_metrics)) ]
  in
  let latency_row r =
    Json.Obj
      [ ("hook", Json.Str r.lt_hook);
        ("engine", Json.Str r.lt_engine);
        ("count", Json.num (float_of_int r.lt_count));
        ("p50_ns", Json.num (float_of_int r.lt_p50));
        ("p90_ns", Json.num (float_of_int r.lt_p90));
        ("p99_ns", Json.num (float_of_int r.lt_p99));
        ("max_ns", Json.num (float_of_int r.lt_max)) ]
  in
  Json.Obj
    [ ("schema_version", Json.num (float_of_int schema_version));
      ("tool", Json.Str "protego-bench");
      ( "environment",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.environment) );
      ("scenarios", Json.List (List.map scenario t.scenarios));
      ("latency", Json.List (List.map latency_row t.latency));
      ( "cache",
        Json.Obj
          [ ("hits", Json.num (float_of_int t.cache.cs_hits));
            ("misses", Json.num (float_of_int t.cache.cs_misses));
            ("hit_ratio", Json.num t.cache.cs_hit_ratio);
            ("stale_evictions", Json.num (float_of_int t.cache.cs_stale));
            ("capacity_evictions", Json.num (float_of_int t.cache.cs_capacity))
          ] ) ]

let ( let* ) = Result.bind

let field what k j =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing key %S" what k)

let num_field what k j =
  let* v = field what k j in
  match Json.to_num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: key %S is not a number" what k)

let int_field what k j =
  let* f = num_field what k j in
  Ok (int_of_float f)

let str_field what k j =
  let* v = field what k j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: key %S is not a string" what k)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json j =
  let* version = num_field "report" "schema_version" j in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "report: schema_version %d wanted, got %g" schema_version
         version)
  else
    let* scenarios_j = field "report" "scenarios" j in
    let* scenarios =
      map_result
        (fun sj ->
          let* name = str_field "scenario" "name" sj in
          let* metrics_j = field ("scenario " ^ name) "metrics" sj in
          match metrics_j with
          | Json.Obj fields ->
              let* metrics =
                map_result
                  (fun (k, v) ->
                    match Json.to_num v with
                    | Some f -> Ok (k, f)
                    | None ->
                        Error
                          (Printf.sprintf "scenario %s: metric %S not a number"
                             name k))
                  fields
              in
              Ok { sc_name = name; sc_metrics = metrics }
          | _ -> Error (Printf.sprintf "scenario %s: metrics not an object" name))
        (Json.to_list scenarios_j)
    in
    let* latency_j = field "report" "latency" j in
    let* latency =
      map_result
        (fun lj ->
          let* hook = str_field "latency row" "hook" lj in
          let what = "latency " ^ hook in
          let* engine = str_field what "engine" lj in
          let* count = int_field what "count" lj in
          let* p50 = int_field what "p50_ns" lj in
          let* p90 = int_field what "p90_ns" lj in
          let* p99 = int_field what "p99_ns" lj in
          let* mx = int_field what "max_ns" lj in
          Ok
            { lt_hook = hook; lt_engine = engine; lt_count = count;
              lt_p50 = p50; lt_p90 = p90; lt_p99 = p99; lt_max = mx })
        (Json.to_list latency_j)
    in
    let* cache_j = field "report" "cache" j in
    let* hits = int_field "cache" "hits" cache_j in
    let* misses = int_field "cache" "misses" cache_j in
    let* ratio = num_field "cache" "hit_ratio" cache_j in
    let* stale = int_field "cache" "stale_evictions" cache_j in
    let* capacity = int_field "cache" "capacity_evictions" cache_j in
    (* Optional since its introduction: reports written by older benches
       (and hand-trimmed baselines) simply lack the key.  Like every
       other lookup here this is member-based, so keys this reader does
       not know are ignored rather than rejected — the report can grow
       without breaking an older gate. *)
    let* environment =
      match Json.member "environment" j with
      | None -> Ok []
      | Some (Json.Obj fields) ->
          map_result
            (fun (k, v) ->
              match Json.to_str v with
              | Some s -> Ok (k, s)
              | None ->
                  Error
                    (Printf.sprintf "environment: key %S is not a string" k))
            fields
      | Some _ -> Error "environment: not an object"
    in
    Ok
      { scenarios; latency;
        cache =
          { cs_hits = hits; cs_misses = misses; cs_hit_ratio = ratio;
            cs_stale = stale; cs_capacity = capacity };
        environment }

(* --- structural assertions ---------------------------------------------- *)

let is_ns_metric k =
  let suffix = "_ns" in
  let lk = String.length k and ls = String.length suffix in
  lk >= ls && String.sub k (lk - ls) ls = suffix

let validate t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.scenarios = [] then bad "no scenarios";
  List.iter
    (fun sc ->
      if sc.sc_metrics = [] then bad "scenario %s: no metrics" sc.sc_name;
      List.iter
        (fun (k, v) ->
          if not (Float.is_finite v) then
            bad "scenario %s: %s is not finite" sc.sc_name k
          else if v < 0.0 then bad "scenario %s: %s < 0" sc.sc_name k
          else if is_ns_metric k && v <= 0.0 then
            bad "scenario %s: %s is not a positive rate" sc.sc_name k)
        sc.sc_metrics)
    t.scenarios;
  if t.latency = [] then bad "no latency rows";
  List.iter
    (fun r ->
      let where = Printf.sprintf "latency %s/%s" r.lt_hook r.lt_engine in
      if r.lt_count <= 0 then bad "%s: count %d" where r.lt_count;
      if r.lt_p50 < 0 then bad "%s: negative p50" where;
      if not (r.lt_p50 <= r.lt_p90 && r.lt_p90 <= r.lt_p99) then
        bad "%s: percentiles not monotone (p50 %d p90 %d p99 %d)" where
          r.lt_p50 r.lt_p90 r.lt_p99;
      if r.lt_p99 > r.lt_max && r.lt_max > 0 && r.lt_p99 <> max_int then
        bad "%s: p99 %d exceeds max %d" where r.lt_p99 r.lt_max)
    t.latency;
  if t.cache.cs_hit_ratio < 0.0 || t.cache.cs_hit_ratio > 1.0 then
    bad "cache: hit_ratio %g out of [0,1]" t.cache.cs_hit_ratio;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

(* --- regression gate ----------------------------------------------------- *)

let compare_baseline ~current ~baseline ~tolerance =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun base_sc ->
      match
        List.find_opt (fun sc -> sc.sc_name = base_sc.sc_name)
          current.scenarios
      with
      | None -> bad "scenario %s: in baseline but not in report" base_sc.sc_name
      | Some cur_sc ->
          List.iter
            (fun (k, base_v) ->
              if is_ns_metric k && base_v > 0.0 then
                match List.assoc_opt k cur_sc.sc_metrics with
                | None ->
                    bad "scenario %s: metric %s in baseline but not in report"
                      base_sc.sc_name k
                | Some cur_v ->
                    if cur_v > tolerance *. base_v then
                      bad
                        "scenario %s: %s regressed %.1fx (%.1fns vs baseline \
                         %.1fns, tolerance %gx)"
                        base_sc.sc_name k (cur_v /. base_v) cur_v base_v
                        tolerance)
            base_sc.sc_metrics)
    baseline.scenarios;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok j -> (
          match of_json j with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok t -> Ok t))
