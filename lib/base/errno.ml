type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | ENXIO
  | ENOEXEC
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOTTY
  | ENOSPC
  | EROFS
  | EMLINK
  | EPIPE
  | ERANGE
  | ENAMETOOLONG
  | ENOSYS
  | ENOTEMPTY
  | ELOOP
  | EADDRINUSE
  | EADDRNOTAVAIL
  | ENETUNREACH
  | ECONNREFUSED
  | ETIMEDOUT
  | EHOSTUNREACH
  | ENOPROTOOPT
  | EPROTONOSUPPORT

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | ENXIO -> "ENXIO"
  | ENOEXEC -> "ENOEXEC"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENODEV -> "ENODEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | EMFILE -> "EMFILE"
  | ENOTTY -> "ENOTTY"
  | ENOSPC -> "ENOSPC"
  | EROFS -> "EROFS"
  | EMLINK -> "EMLINK"
  | EPIPE -> "EPIPE"
  | ERANGE -> "ERANGE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOSYS -> "ENOSYS"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | EADDRINUSE -> "EADDRINUSE"
  | EADDRNOTAVAIL -> "EADDRNOTAVAIL"
  | ENETUNREACH -> "ENETUNREACH"
  | ECONNREFUSED -> "ECONNREFUSED"
  | ETIMEDOUT -> "ETIMEDOUT"
  | EHOSTUNREACH -> "EHOSTUNREACH"
  | ENOPROTOOPT -> "ENOPROTOOPT"
  | EPROTONOSUPPORT -> "EPROTONOSUPPORT"

let message = function
  | EPERM -> "Operation not permitted"
  | ENOENT -> "No such file or directory"
  | ESRCH -> "No such process"
  | EINTR -> "Interrupted system call"
  | EIO -> "Input/output error"
  | ENXIO -> "No such device or address"
  | ENOEXEC -> "Exec format error"
  | EBADF -> "Bad file descriptor"
  | ECHILD -> "No child processes"
  | EAGAIN -> "Resource temporarily unavailable"
  | ENOMEM -> "Cannot allocate memory"
  | EACCES -> "Permission denied"
  | EFAULT -> "Bad address"
  | EBUSY -> "Device or resource busy"
  | EEXIST -> "File exists"
  | EXDEV -> "Invalid cross-device link"
  | ENODEV -> "No such device"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EINVAL -> "Invalid argument"
  | ENFILE -> "Too many open files in system"
  | EMFILE -> "Too many open files"
  | ENOTTY -> "Inappropriate ioctl for device"
  | ENOSPC -> "No space left on device"
  | EROFS -> "Read-only file system"
  | EMLINK -> "Too many links"
  | EPIPE -> "Broken pipe"
  | ERANGE -> "Numerical result out of range"
  | ENAMETOOLONG -> "File name too long"
  | ENOSYS -> "Function not implemented"
  | ENOTEMPTY -> "Directory not empty"
  | ELOOP -> "Too many levels of symbolic links"
  | EADDRINUSE -> "Address already in use"
  | EADDRNOTAVAIL -> "Cannot assign requested address"
  | ENETUNREACH -> "Network is unreachable"
  | ECONNREFUSED -> "Connection refused"
  | ETIMEDOUT -> "Connection timed out"
  | EHOSTUNREACH -> "No route to host"
  | ENOPROTOOPT -> "Protocol not available"
  | EPROTONOSUPPORT -> "Protocol not supported"

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Stable wire codes for binary records (the audit journal): constructor
   order, 1-based so 0 can mean "no errno" in fixed-width encodings.
   Appending constructors keeps old codes valid; reordering would not. *)
let all =
  [| EPERM; ENOENT; ESRCH; EINTR; EIO; ENXIO; ENOEXEC; EBADF; ECHILD;
     EAGAIN; ENOMEM; EACCES; EFAULT; EBUSY; EEXIST; EXDEV; ENODEV;
     ENOTDIR; EISDIR; EINVAL; ENFILE; EMFILE; ENOTTY; ENOSPC; EROFS;
     EMLINK; EPIPE; ERANGE; ENAMETOOLONG; ENOSYS; ENOTEMPTY; ELOOP;
     EADDRINUSE; EADDRNOTAVAIL; ENETUNREACH; ECONNREFUSED; ETIMEDOUT;
     EHOSTUNREACH; ENOPROTOOPT; EPROTONOSUPPORT |]

(* Exhaustive on purpose: adding a constructor without assigning its
   wire code is a compile error here, and the assertion below keeps
   [all] (the decode table) in sync with these codes. *)
let to_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | ESRCH -> 3
  | EINTR -> 4
  | EIO -> 5
  | ENXIO -> 6
  | ENOEXEC -> 7
  | EBADF -> 8
  | ECHILD -> 9
  | EAGAIN -> 10
  | ENOMEM -> 11
  | EACCES -> 12
  | EFAULT -> 13
  | EBUSY -> 14
  | EEXIST -> 15
  | EXDEV -> 16
  | ENODEV -> 17
  | ENOTDIR -> 18
  | EISDIR -> 19
  | EINVAL -> 20
  | ENFILE -> 21
  | EMFILE -> 22
  | ENOTTY -> 23
  | ENOSPC -> 24
  | EROFS -> 25
  | EMLINK -> 26
  | EPIPE -> 27
  | ERANGE -> 28
  | ENAMETOOLONG -> 29
  | ENOSYS -> 30
  | ENOTEMPTY -> 31
  | ELOOP -> 32
  | EADDRINUSE -> 33
  | EADDRNOTAVAIL -> 34
  | ENETUNREACH -> 35
  | ECONNREFUSED -> 36
  | ETIMEDOUT -> 37
  | EHOSTUNREACH -> 38
  | ENOPROTOOPT -> 39
  | EPROTONOSUPPORT -> 40

let () = Array.iteri (fun i e -> assert (to_code e = i + 1)) all

let of_code c = if c >= 1 && c <= Array.length all then Some all.(c - 1) else None
