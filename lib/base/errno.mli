(** Unix error numbers, as returned by the simulated system calls.

    Every system call in the simulator returns [('a, Errno.t) result]; the
    subset below covers every error the paper's code paths can produce. *)

type t =
  | EPERM        (** Operation not permitted *)
  | ENOENT       (** No such file or directory *)
  | ESRCH        (** No such process *)
  | EINTR        (** Interrupted system call *)
  | EIO          (** I/O error *)
  | ENXIO        (** No such device or address *)
  | ENOEXEC      (** Exec format error *)
  | EBADF        (** Bad file descriptor *)
  | ECHILD       (** No child processes *)
  | EAGAIN       (** Resource temporarily unavailable *)
  | ENOMEM       (** Out of memory *)
  | EACCES       (** Permission denied *)
  | EFAULT       (** Bad address *)
  | EBUSY        (** Device or resource busy *)
  | EEXIST       (** File exists *)
  | EXDEV        (** Cross-device link *)
  | ENODEV       (** No such device *)
  | ENOTDIR      (** Not a directory *)
  | EISDIR       (** Is a directory *)
  | EINVAL       (** Invalid argument *)
  | ENFILE       (** Too many open files in system *)
  | EMFILE       (** Too many open files *)
  | ENOTTY       (** Inappropriate ioctl for device *)
  | ENOSPC       (** No space left on device *)
  | EROFS        (** Read-only file system *)
  | EMLINK       (** Too many links *)
  | EPIPE        (** Broken pipe *)
  | ERANGE       (** Result too large *)
  | ENAMETOOLONG (** File name too long *)
  | ENOSYS       (** Function not implemented *)
  | ENOTEMPTY    (** Directory not empty *)
  | ELOOP        (** Too many levels of symbolic links *)
  | EADDRINUSE   (** Address already in use *)
  | EADDRNOTAVAIL(** Cannot assign requested address *)
  | ENETUNREACH  (** Network is unreachable *)
  | ECONNREFUSED (** Connection refused *)
  | ETIMEDOUT    (** Connection timed out *)
  | EHOSTUNREACH (** No route to host *)
  | ENOPROTOOPT  (** Protocol not available *)
  | EPROTONOSUPPORT (** Protocol not supported *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** Symbolic name, e.g. ["EPERM"]. *)

val message : t -> string
(** Human-readable message, e.g. ["Operation not permitted"]. *)

val pp : Format.formatter -> t -> unit

val to_code : t -> int
(** Stable positive wire code (constructor order, 1-based) for binary
    encodings; 0 is reserved for "no errno". *)

val of_code : int -> t option
(** Inverse of {!to_code}; [None] for 0 or out-of-range codes. *)
