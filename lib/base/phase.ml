(* Per-task lifecycle phase (the SysPart-style temporal dimension).

   A task moves through an ordered, one-way sequence of phases:

     Setup  ->  Serving  ->  Steady

   [Setup] is the program's initialization window (the bind-port-80
   window of the paper's motivating server example); [Serving] starts
   when the program begins serving requests (first listen/accept) or
   performs its privilege drop (setuid); [Steady] is the long-running
   tail where only the minimal residual privilege should remain.

   Transitions are tighten-only: within one program image the phase
   index never decreases.  An execve starts a fresh lifecycle (the
   whole credential set is re-derived for the new image), which is the
   only point the phase returns to [Setup].

   Policies attach a [guard] to individual rules.  Tighten-only-ness
   of a whole policy is syntactically checkable: a guard is
   downward-closed when the set of phases it activates in is a prefix
   of the lifecycle ({Setup}, {Setup,Serving}, or all three).  A rule
   with a non-downward-closed guard grants in a late phase something
   it withheld earlier — that is a loosening and the lint layer
   rejects it (PL-PH001). *)

type t = Setup | Serving | Steady

let count = 3
let index = function Setup -> 0 | Serving -> 1 | Steady -> 2
let of_index = function
  | 0 -> Setup
  | 1 -> Serving
  | 2 -> Steady
  | n -> invalid_arg (Printf.sprintf "Phase.of_index %d" n)

let initial = Setup
let final = Steady
let compare a b = Int.compare (index a) (index b)
let equal a b = index a = index b

let to_string = function
  | Setup -> "setup"
  | Serving -> "serving"
  | Steady -> "steady"

let of_string = function
  | "setup" -> Some Setup
  | "serving" -> Some Serving
  | "steady" -> Some Steady
  | _ -> None

(* The next phase in the lifecycle; saturates at [final]. *)
let succ = function Setup -> Serving | Serving -> Steady | Steady -> Steady

(* [advance cur candidate] is the tighten-only join: the phase moves
   forward to [candidate] or stays put, never back. *)
let advance cur candidate = if compare candidate cur > 0 then candidate else cur

(* --- rule guards ----------------------------------------------------- *)

(* A guard restricts the phases in which a rule is active.  [Always] is
   the unguarded (time-invariant) rule; the three comparison forms
   mirror the concrete syntax "phase<=serving" / "phase=setup" /
   "phase>=serving". *)
type guard = Always | Upto of t | Exactly of t | From of t

let active g p =
  match g with
  | Always -> true
  | Upto q -> index p <= index q
  | Exactly q -> index p = index q
  | From q -> index p >= index q

(* Downward-closed guards activate in a prefix of the lifecycle: the
   rule can only ever *lose* applicability as the phase advances, so it
   is tighten-only by construction. *)
let downward_closed = function
  | Always -> true
  | Upto _ -> true
  | Exactly p -> index p = 0
  | From p -> index p = 0

let guard_to_string = function
  | Always -> "phase<=steady"
  | Upto p -> "phase<=" ^ to_string p
  | Exactly p -> "phase=" ^ to_string p
  | From p -> "phase>=" ^ to_string p

(* Parses a guard token.  Returns [None] when the token is not a phase
   guard at all (so callers can fall through to other grammar), and
   [Some (Error _)] when it is one but malformed. *)
let parse_guard tok =
  let prefix = "phase" in
  let plen = String.length prefix in
  if String.length tok <= plen || not (String.sub tok 0 plen = prefix) then None
  else
    let rest = String.sub tok plen (String.length tok - plen) in
    let op, name =
      if String.length rest >= 2 && String.sub rest 0 2 = "<=" then
        (`Upto, String.sub rest 2 (String.length rest - 2))
      else if String.length rest >= 2 && String.sub rest 0 2 = ">=" then
        (`From, String.sub rest 2 (String.length rest - 2))
      else if rest.[0] = '=' then
        (`Exactly, String.sub rest 1 (String.length rest - 1))
      else (`Bad, rest)
    in
    match op with
    | `Bad -> Some (Error (Printf.sprintf "malformed phase guard %S" tok))
    | _ -> (
        match of_string name with
        | None -> Some (Error (Printf.sprintf "unknown phase %S" name))
        | Some p ->
            Some
              (Ok
                 (match op with
                 | `Upto -> Upto p
                 | `From -> From p
                 | `Exactly -> Exactly p
                 | `Bad -> assert false)))

let all = [ Setup; Serving; Steady ]
