(** Per-task lifecycle phase: the one-way temporal dimension of a
    policy (Setup -> Serving -> Steady), plus the per-rule guards the
    declarative policy sources attach.  See DESIGN.md §11. *)

type t = Setup | Serving | Steady

val count : int
val index : t -> int
val of_index : int -> t
val initial : t
val final : t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val succ : t -> t
val advance : t -> t -> t
val all : t list

(** Rule guards: the set of phases a rule is active in. *)
type guard = Always | Upto of t | Exactly of t | From of t

val active : guard -> t -> bool
val downward_closed : guard -> bool
val guard_to_string : guard -> string

val parse_guard : string -> (guard, string) result option
(** [parse_guard tok] is [None] when [tok] is not a phase guard,
    [Some (Error _)] when it is one but malformed. *)
