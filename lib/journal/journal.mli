(** Lock-free append-only binary audit journal.

    An Aeron-style log over a fixed ring of power-of-two [Bytes]
    segments.  Writers never lock and never allocate on the hot path:
    each writer holds a {e term}, claims whole segments from the shared
    logical tail with a single [Atomic.fetch_and_add], and bump-allocates
    records inside its current segment with plain (domain-private)
    arithmetic — so the common-case append touches no shared state at
    all.  A record becomes visible by {e commit}: the body is filled
    first, then a one-word length-prefix header is written over the
    record's first four bytes.  Readers treat a zero/invalid header as
    the in-flight tail of that segment and stop scanning it, so they can
    never observe a torn record (binary format and the memory-model
    argument: DESIGN.md §8).

    The logical tail grows forever; physical segment [l mod segments]
    backs logical segment [l].  Once the tail passes [capacity], the
    oldest segments are overwritten ({e laps}); records written minus
    records still decodable is the journal's drop count, surfaced by
    {!dropped} and in {!render_stats}.

    Two record kinds share the store: plane {e decision} records (one
    per {!Protego_plane.Plane} request, stamped with run / submission
    sequence / snapshot epoch, which is what lets {!stitch} rebuild one
    total submission order from per-domain terms without any merge
    barrier) and kernel {e kaudit} records (the [Audit] ring's storage). *)

type t
type term

val create : ?seg_bytes:int -> ?segments:int -> unit -> t
(** [seg_bytes] (default 65536) and [segments] (default 16) must both be
    powers of two; [seg_bytes >= 4096].  Raises [Invalid_argument]
    otherwise.  Segments are zeroed at creation (and re-zeroed by their
    owning term on every wrap lap), so a reader can always distinguish
    committed records from virgin space. *)

val seg_bytes : t -> int
val segments : t -> int

val capacity : t -> int
(** [seg_bytes * segments]: bytes of live window. *)

val tail : t -> int
(** Logical bytes claimed so far (a multiple of [seg_bytes]). *)

val term : t -> domain:int -> term
(** A writer handle for one domain.  Terms must not be shared between
    domains.  Each active term owns one whole segment at a time, so a
    journal serves at most [segments] concurrent terms: registering
    more raises [Invalid_argument] ({!retire} frees a slot).  A term
    lagging a full capacity lap behind the shared tail is a {e writer
    overrun}: the overrunning claim raises [Failure] rather than
    zero-filling the laggard's live segment under it. *)

val retire : term -> unit
(** Deregister a term: pad out the unwritten remainder of its active
    segment, release the segment, and fold the term's counters into the
    journal-wide totals ({!records_written}, {!stats}).  Idempotent; the
    term must not be used afterwards. *)

(** {1 Zero-allocation appenders}

    Each appender claims space in the term's current segment (claiming a
    fresh segment — and padding out the remainder — when the record does
    not fit), writes fixed-width fields and length-prefixed inline
    strings directly into the store, and commits.  Strings are truncated
    to 255 bytes.  No OCaml heap allocation occurs.

    Decision fields: [verdict] is 0 deny / 1 allow / 2 reject; [errno]
    is 0 for none, else {!Protego_base.Errno.to_code}; [flags] is the
    compiled mount-flag mask; [proto] is 0 tcp / 1 udp. *)

val append_mount :
  term -> seq:int -> run:int -> epoch:int -> subject:int -> verdict:int ->
  errno:int -> source:string -> target:string -> fstype:string ->
  flags:int -> unit

val append_umount :
  term -> seq:int -> run:int -> epoch:int -> subject:int -> verdict:int ->
  errno:int -> target:string -> mounted_by:int -> unit

val append_bind :
  term -> seq:int -> run:int -> epoch:int -> subject:int -> verdict:int ->
  errno:int -> port:int -> proto:int -> exe:string -> unit

val append_ppp :
  term -> seq:int -> run:int -> epoch:int -> subject:int -> verdict:int ->
  errno:int -> device:string -> safe:bool -> unit

val append_kaudit :
  term -> time:float -> pid:int -> uid:int -> op:string -> obj:string ->
  allowed:bool -> engine:string option -> span:int option -> unit
(** Kernel audit record ({!Protego_kernel.Audit} storage).  [engine] is
    encoded as an inline string, [""] meaning [None]. *)

(** {1 Decoding} *)

type req =
  | Mount of { source : string; target : string; fstype : string; flags : int }
  | Umount of { target : string; mounted_by : int }
  | Bind of { port : int; proto : int; exe : string }
  | Ppp of { device : string; safe : bool }

type decision = {
  d_seq : int;
  d_run : int;
  d_epoch : int;
  d_domain : int;
  d_subject : int;
  d_verdict : int;
  d_errno : int;
  d_req : req;
}

type kaudit = {
  k_time : float;
  k_pid : int;
  k_uid : int;
  k_allowed : bool;
  k_op : string;
  k_obj : string;
  k_engine : string option;
  k_span : int option;
}

type entry = Decision of decision | Kaudit of kaudit

val iter : t -> (entry -> unit) -> unit
(** Committed records of the live window, oldest claimed segment first,
    in-segment order.  Within one segment this is that term's append
    order; across segments it is claim order.  Scanning a segment stops
    at the first uncommitted or invalid header (the in-flight tail); a
    concurrent writer's unfinished records are simply not yet visible.
    Intended for quiescent reads (after a run, or [Domain.join]);
    mid-run reads are best-effort. *)

val entries : t -> entry list
val decisions : t -> decision list

val records_written : t -> int
(** Total committed records over all terms (active and retired) since
    creation, padding records excluded — including those already
    overwritten by laps. *)

val live_entries : t -> int
(** Records currently decodable ({!iter} count). *)

val dropped : t -> int
(** [records_written - live_entries]: records lost to wraparound. *)

type stats = {
  s_seg_bytes : int;
  s_segments : int;
  s_capacity : int;
  s_tail : int;
  s_laps : int;       (** completed capacity wraps of the logical tail *)
  s_terms : int;      (** active terms; retired terms' counters stay folded
                          into [s_records]/[s_bytes]/[s_padding] *)
  s_records : int;    (** committed records, padding excluded *)
  s_bytes : int;      (** committed record bytes, padding included *)
  s_padding : int;    (** padding records written at segment ends *)
  s_live : int;
  s_dropped : int;
}

val stats : t -> stats

val render_stats : t -> string
(** Two ["journal ..."] key/value lines, one field layout forever. *)

val stitch :
  t -> run:int -> base:int -> count:int -> (decision array, string) result
(** Reconstruct the total submission order of one plane run: collect the
    live decisions stamped [run] with [base <= d_seq < base + count] and
    place each at index [d_seq - base].  Errors on a duplicate sequence
    number or on any missing (lost) record — the zero-lost,
    zero-duplicated guarantee is checked, not assumed. *)

val entry_to_string : entry -> string
(** One-line rendering for the CLI ([protego-journal dump]). *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the whole store (header, term counters, raw segments) to a
    file; the format is what {!load} and the [protego-journal] CLI
    read. *)

val load : string -> (t, string) result

(** {1 Test hooks}

    The torn-record suites need to place a claim without committing it. *)

val unsafe_claim : term -> int -> int
(** Claim [len] bytes (8-aligned, min 8) in the term's current segment
    without writing anything; returns the logical offset.  The region
    stays invisible to readers until {!commit}. *)

val commit : t -> at:int -> len:int -> padding:bool -> unit
(** Write the header word for a claim obtained from {!unsafe_claim}. *)

(** {1 Kernel audit sink}

    A journal, one term, and an emit counter bundled for
    {!Protego_kernel.Ktypes.machine} (which cannot depend on the kernel
    [Audit] module's own types). *)

type sink = {
  mutable sk_journal : t;
  mutable sk_term : term;
  mutable sk_emitted : int;
}

val sink : ?seg_bytes:int -> ?segments:int -> unit -> sink
val sink_emit :
  sink -> time:float -> pid:int -> uid:int -> op:string -> obj:string ->
  allowed:bool -> engine:string option -> span:int option -> unit
val sink_clear : sink -> unit
(** Fresh journal and term; the emit counter restarts at zero. *)
