module Errno = Protego_base.Errno

(* Record framing.  Every record is 8-byte aligned and starts with one
   little-endian 32-bit header word:

     bit 31      lap parity of the record's logical offset
     bit 30      padding flag (dead space at a segment end)
     bits 0..29  total record length in bytes, header included

   The header is written last (claim, fill, commit): a reader that sees
   zero or an invalid length at a record boundary is looking at the
   in-flight tail of that segment and stops.  Segments are zeroed when
   (re)claimed, so stale previous-lap bytes can never alias a valid
   header; the parity bit is a second, independent guard for readers
   racing a wrap. *)

let align = 8
let max_string = 255

type t = {
  jseg_bytes : int;
  jseg_shift : int;
  jseg_mask : int;
  jsegs : int;
  jsegs_mask : int;
  jcapacity : int;
  jcap_shift : int;
  store : Bytes.t array;
  jtail : int Atomic.t;  (* logical bytes claimed; multiple of jseg_bytes *)
  jowners : int Atomic.t array;
      (* per physical segment: 1 + logical start of the owning claim, or
         0 when no term is writing into it — the writer-overrun guard *)
  mutable jterms : term list;  (* registration is setup-time, coordinator-side *)
  mutable jretired_records : int;  (* counters of retired terms, folded *)
  mutable jretired_bytes : int;    (* into the journal-wide stats *)
  mutable jretired_padding : int;
}

and term = {
  tm_domain : int;
  tm_j : t;
  mutable tm_pos : int;  (* next free logical offset in the current segment *)
  mutable tm_end : int;  (* logical end of the current segment *)
  mutable tm_records : int;
  mutable tm_bytes : int;
  mutable tm_padding : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let rec shift_of n = if n <= 1 then 0 else 1 + shift_of (n lsr 1)

let create ?(seg_bytes = 65536) ?(segments = 16) () =
  if (not (is_pow2 seg_bytes)) || seg_bytes < 4096 then
    invalid_arg "Journal.create: seg_bytes must be a power of two >= 4096";
  if not (is_pow2 segments) then
    invalid_arg "Journal.create: segments must be a power of two";
  { jseg_bytes = seg_bytes; jseg_shift = shift_of seg_bytes;
    jseg_mask = seg_bytes - 1; jsegs = segments; jsegs_mask = segments - 1;
    jcapacity = seg_bytes * segments;
    jcap_shift = shift_of (seg_bytes * segments);
    store = Array.init segments (fun _ -> Bytes.make seg_bytes '\000');
    jtail = Atomic.make 0;
    jowners = Array.init segments (fun _ -> Atomic.make 0);
    jterms = []; jretired_records = 0; jretired_bytes = 0;
    jretired_padding = 0 }

let seg_bytes j = j.jseg_bytes
let segments j = j.jsegs
let capacity j = j.jcapacity
let tail j = Atomic.get j.jtail

let term j ~domain =
  if List.length j.jterms >= j.jsegs then
    invalid_arg
      (Printf.sprintf
         "Journal.term: %d active terms on %d segments (each active term \
          owns a whole segment)"
         (List.length j.jterms) j.jsegs);
  let tm =
    { tm_domain = domain; tm_j = j; tm_pos = 0; tm_end = 0; tm_records = 0;
      tm_bytes = 0; tm_padding = 0 }
  in
  j.jterms <- tm :: j.jterms;
  tm

(* Physical backing of a logical offset. *)
let seg_index j o = (o lsr j.jseg_shift) land j.jsegs_mask
let phys j o = Array.unsafe_get j.store (seg_index j o)
let parity j o = (o lsr j.jcap_shift) land 1

let set_header j ~at ~len ~padding =
  let h =
    (parity j at lsl 31) lor ((if padding then 1 else 0) lsl 30) lor len
  in
  Bytes.set_int32_le (phys j at) (at land j.jseg_mask) (Int32.of_int h)

let get_header j ~at =
  Int32.to_int (Bytes.get_int32_le (phys j at) (at land j.jseg_mask))
  land 0xFFFFFFFF

(* A term's current segment, released when it claims the next one (or
   retires).  The CAS-from-our-own-token makes the release a no-op if
   the slot somehow changed hands — it cannot unless we already failed. *)
let release_segment tm =
  let j = tm.tm_j in
  if tm.tm_end > 0 then begin
    let start = tm.tm_end - j.jseg_bytes in
    ignore
      (Atomic.compare_and_set j.jowners.(seg_index j start) (start + 1) 0
        : bool)
  end

(* Claim a whole fresh segment: the single shared-state operation on the
   write path.  The claiming term owns the segment exclusively (recorded
   in [jowners]), so the wrap-lap zeroing below is single-writer.  If
   the physical segment backing the new claim is still some lagging
   term's active segment — a writer a full capacity lap behind the
   shared tail — zero-filling it would corrupt that term's committed
   records under it, so the claim fails loudly instead. *)
let new_chunk tm =
  let j = tm.tm_j in
  release_segment tm;
  let pos = Atomic.fetch_and_add j.jtail j.jseg_bytes in
  if not (Atomic.compare_and_set j.jowners.(seg_index j pos) 0 (pos + 1)) then
    failwith
      "Journal: writer overrun: reclaimed physical segment is still a \
       lagging term's active segment";
  if pos >= j.jcapacity then Bytes.fill (phys j pos) 0 j.jseg_bytes '\000';
  tm.tm_pos <- pos;
  tm.tm_end <- pos + j.jseg_bytes

(* Bump-allocate [len] (8-aligned, <= jseg_bytes) in the term's current
   segment; pad out the remainder and claim a fresh segment when it does
   not fit.  Domain-local: no atomics on the common path. *)
let rec claim tm len =
  if tm.tm_pos + len <= tm.tm_end then begin
    let at = tm.tm_pos in
    tm.tm_pos <- at + len;
    at
  end
  else begin
    let rem = tm.tm_end - tm.tm_pos in
    if rem > 0 then begin
      set_header tm.tm_j ~at:tm.tm_pos ~len:rem ~padding:true;
      tm.tm_padding <- tm.tm_padding + 1
    end;
    new_chunk tm;
    claim tm len
  end

(* Deregister a term: pad out the unwritten remainder of its active
   segment (so readers skip it), release the segment's ownership, and
   fold the term's counters into the journal-wide retired totals.  Used
   when the plane replaces its workers without rotating the journal. *)
let retire tm =
  let j = tm.tm_j in
  if List.memq tm j.jterms then begin
    if tm.tm_end > 0 then begin
      let rem = tm.tm_end - tm.tm_pos in
      if rem > 0 then begin
        set_header j ~at:tm.tm_pos ~len:rem ~padding:true;
        tm.tm_padding <- tm.tm_padding + 1
      end;
      release_segment tm;
      tm.tm_pos <- tm.tm_end
    end;
    j.jterms <- List.filter (fun t -> t != tm) j.jterms;
    j.jretired_records <- j.jretired_records + tm.tm_records;
    j.jretired_bytes <- j.jretired_bytes + tm.tm_bytes;
    j.jretired_padding <- j.jretired_padding + tm.tm_padding
  end

let rounded n = (n + align - 1) land lnot (align - 1)

let str_len s =
  let l = String.length s in
  1 + if l > max_string then max_string else l

let put_str b off s =
  let l = String.length s in
  let n = if l > max_string then max_string else l in
  Bytes.unsafe_set b off (Char.unsafe_chr n);
  Bytes.blit_string s 0 b (off + 1) n;
  off + 1 + n

let put_u8 b off v = Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff))
let put_u16 b off v = Bytes.set_uint16_le b off v
let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

(* Decision record, after the header word:
     4  kind = 1          5  domain         6  reqtag (0..3)
     7  verdict           8  errno (0 = none)
     9  seq u32          13  run u32       17  epoch u32     21  subject u32
    25  per-reqtag body (fixed fields first, then length-prefixed strings) *)

let put_decision tm ~at ~reqtag ~seq ~run ~epoch ~subject ~verdict ~errno =
  let j = tm.tm_j in
  let b = phys j at in
  let o = at land j.jseg_mask in
  put_u8 b (o + 4) 1;
  put_u8 b (o + 5) tm.tm_domain;
  put_u8 b (o + 6) reqtag;
  put_u8 b (o + 7) verdict;
  put_u8 b (o + 8) errno;
  put_u32 b (o + 9) seq;
  put_u32 b (o + 13) run;
  put_u32 b (o + 17) epoch;
  put_u32 b (o + 21) subject;
  (b, o)

let finish tm ~at ~len =
  set_header tm.tm_j ~at ~len ~padding:false;
  tm.tm_records <- tm.tm_records + 1;
  tm.tm_bytes <- tm.tm_bytes + len

let append_mount tm ~seq ~run ~epoch ~subject ~verdict ~errno ~source ~target
    ~fstype ~flags =
  let len =
    rounded (27 + str_len source + str_len target + str_len fstype)
  in
  let at = claim tm len in
  let b, o =
    put_decision tm ~at ~reqtag:0 ~seq ~run ~epoch ~subject ~verdict ~errno
  in
  put_u16 b (o + 25) flags;
  let p = put_str b (o + 27) source in
  let p = put_str b p target in
  ignore (put_str b p fstype : int);
  finish tm ~at ~len

let append_umount tm ~seq ~run ~epoch ~subject ~verdict ~errno ~target
    ~mounted_by =
  let len = rounded (29 + str_len target) in
  let at = claim tm len in
  let b, o =
    put_decision tm ~at ~reqtag:1 ~seq ~run ~epoch ~subject ~verdict ~errno
  in
  put_u32 b (o + 25) mounted_by;
  ignore (put_str b (o + 29) target : int);
  finish tm ~at ~len

let append_bind tm ~seq ~run ~epoch ~subject ~verdict ~errno ~port ~proto ~exe =
  let len = rounded (28 + str_len exe) in
  let at = claim tm len in
  let b, o =
    put_decision tm ~at ~reqtag:2 ~seq ~run ~epoch ~subject ~verdict ~errno
  in
  put_u16 b (o + 25) port;
  put_u8 b (o + 27) proto;
  ignore (put_str b (o + 28) exe : int);
  finish tm ~at ~len

let append_ppp tm ~seq ~run ~epoch ~subject ~verdict ~errno ~device ~safe =
  let len = rounded (26 + str_len device) in
  let at = claim tm len in
  let b, o =
    put_decision tm ~at ~reqtag:3 ~seq ~run ~epoch ~subject ~verdict ~errno
  in
  put_u8 b (o + 25) (if safe then 1 else 0);
  ignore (put_str b (o + 26) device : int);
  finish tm ~at ~len

(* Kernel audit record, after the header word:
     4  kind = 2          5  allowed
     6  time f64 bits    14  pid u32       18  uid u32
    22  span u32 (0xFFFFFFFF = none)
    26  strings: op, obj, engine ("" = none) *)

let append_kaudit tm ~time ~pid ~uid ~op ~obj ~allowed ~engine ~span =
  let engine_s = match engine with Some e -> e | None -> "" in
  let len = rounded (26 + str_len op + str_len obj + str_len engine_s) in
  let at = claim tm len in
  let j = tm.tm_j in
  let b = phys j at in
  let o = at land j.jseg_mask in
  put_u8 b (o + 4) 2;
  put_u8 b (o + 5) (if allowed then 1 else 0);
  Bytes.set_int64_le b (o + 6) (Int64.bits_of_float time);
  put_u32 b (o + 14) pid;
  put_u32 b (o + 18) uid;
  put_u32 b (o + 22) (match span with Some s -> s | None -> 0xFFFFFFFF);
  let p = put_str b (o + 26) op in
  let p = put_str b p obj in
  ignore (put_str b p engine_s : int);
  finish tm ~at ~len

(* --- decoding ----------------------------------------------------------- *)

type req =
  | Mount of { source : string; target : string; fstype : string; flags : int }
  | Umount of { target : string; mounted_by : int }
  | Bind of { port : int; proto : int; exe : string }
  | Ppp of { device : string; safe : bool }

type decision = {
  d_seq : int;
  d_run : int;
  d_epoch : int;
  d_domain : int;
  d_subject : int;
  d_verdict : int;
  d_errno : int;
  d_req : req;
}

type kaudit = {
  k_time : float;
  k_pid : int;
  k_uid : int;
  k_allowed : bool;
  k_op : string;
  k_obj : string;
  k_engine : string option;
  k_span : int option;
}

type entry = Decision of decision | Kaudit of kaudit

let get_str b off lim =
  let n = Bytes.get_uint8 b off in
  if off + 1 + n > lim then failwith "Journal: string runs past record end";
  (Bytes.sub_string b (off + 1) n, off + 1 + n)

let decode_entry j ~at ~len =
  let b = phys j at in
  let o = at land j.jseg_mask in
  let lim = o + len in
  match Bytes.get_uint8 b (o + 4) with
  | 1 ->
      let domain = Bytes.get_uint8 b (o + 5) in
      let reqtag = Bytes.get_uint8 b (o + 6) in
      let verdict = Bytes.get_uint8 b (o + 7) in
      let errno = Bytes.get_uint8 b (o + 8) in
      let seq = get_u32 b (o + 9) in
      let run = get_u32 b (o + 13) in
      let epoch = get_u32 b (o + 17) in
      let subject = get_u32 b (o + 21) in
      let req =
        match reqtag with
        | 0 ->
            let flags = Bytes.get_uint16_le b (o + 25) in
            let source, p = get_str b (o + 27) lim in
            let target, p = get_str b p lim in
            let fstype, _ = get_str b p lim in
            Mount { source; target; fstype; flags }
        | 1 ->
            let mounted_by = get_u32 b (o + 25) in
            let target, _ = get_str b (o + 29) lim in
            Umount { target; mounted_by }
        | 2 ->
            let port = Bytes.get_uint16_le b (o + 25) in
            let proto = Bytes.get_uint8 b (o + 27) in
            let exe, _ = get_str b (o + 28) lim in
            Bind { port; proto; exe }
        | 3 ->
            let safe = Bytes.get_uint8 b (o + 25) = 1 in
            let device, _ = get_str b (o + 26) lim in
            Ppp { device; safe }
        | n -> failwith (Printf.sprintf "Journal: unknown reqtag %d" n)
      in
      Decision
        { d_seq = seq; d_run = run; d_epoch = epoch; d_domain = domain;
          d_subject = subject; d_verdict = verdict; d_errno = errno;
          d_req = req }
  | 2 ->
      let allowed = Bytes.get_uint8 b (o + 5) = 1 in
      let time = Int64.float_of_bits (Bytes.get_int64_le b (o + 6)) in
      let pid = get_u32 b (o + 14) in
      let uid = get_u32 b (o + 18) in
      let span =
        let v = get_u32 b (o + 22) in
        if v = 0xFFFFFFFF then None else Some v
      in
      let op, p = get_str b (o + 26) lim in
      let obj, p = get_str b p lim in
      let engine, _ = get_str b p lim in
      Kaudit
        { k_time = time; k_pid = pid; k_uid = uid; k_allowed = allowed;
          k_op = op; k_obj = obj;
          k_engine = (if engine = "" then None else Some engine);
          k_span = span }
  | k -> failwith (Printf.sprintf "Journal: unknown record kind %d" k)

(* Oldest logical segment still physically intact: the live window is
   exactly the last [jsegs] claimed segments. *)
let first_live j tl = if tl <= j.jcapacity then 0 else tl - j.jcapacity

(* Walk one segment's committed records.  Stops at the first header that
   is zero, has the wrong lap parity, or frames an impossible length —
   the uncommitted (or in-flight) tail of this segment. *)
let scan_segment j ~start f =
  let p = parity j start in
  let stop = start + j.jseg_bytes in
  let o = ref start in
  let go = ref true in
  while !go && !o < stop do
    let h = get_header j ~at:!o in
    let par = (h lsr 31) land 1 in
    let pad = (h lsr 30) land 1 in
    let len = h land 0x3FFFFFFF in
    if par <> p || len < align || len land (align - 1) <> 0 || !o + len > stop
    then go := false
    else begin
      if pad = 0 then f ~at:!o ~len;
      o := !o + len
    end
  done

let iter_raw j f =
  let tl = Atomic.get j.jtail in
  let s = ref (first_live j tl) in
  while !s < tl do
    scan_segment j ~start:!s f;
    s := !s + j.jseg_bytes
  done

let iter j f = iter_raw j (fun ~at ~len -> f (decode_entry j ~at ~len))

let entries j =
  let acc = ref [] in
  iter j (fun e -> acc := e :: !acc);
  List.rev !acc

let decisions j =
  let acc = ref [] in
  iter j (function Decision d -> acc := d :: !acc | Kaudit _ -> ());
  List.rev !acc

let records_written j =
  List.fold_left (fun acc tm -> acc + tm.tm_records) j.jretired_records
    j.jterms

let live_entries j =
  let n = ref 0 in
  iter_raw j (fun ~at:_ ~len:_ -> incr n);
  !n

let dropped j = max 0 (records_written j - live_entries j)

type stats = {
  s_seg_bytes : int;
  s_segments : int;
  s_capacity : int;
  s_tail : int;
  s_laps : int;
  s_terms : int;
  s_records : int;
  s_bytes : int;
  s_padding : int;
  s_live : int;
  s_dropped : int;
}

let stats j =
  let records = records_written j in
  let bytes =
    List.fold_left (fun acc tm -> acc + tm.tm_bytes) j.jretired_bytes j.jterms
  in
  let padding =
    List.fold_left (fun acc tm -> acc + tm.tm_padding) j.jretired_padding
      j.jterms
  in
  let live = live_entries j in
  let tl = Atomic.get j.jtail in
  { s_seg_bytes = j.jseg_bytes; s_segments = j.jsegs;
    s_capacity = j.jcapacity; s_tail = tl; s_laps = tl lsr j.jcap_shift;
    s_terms = List.length j.jterms; s_records = records; s_bytes = bytes;
    s_padding = padding; s_live = live;
    s_dropped = max 0 (records - live) }

let render_stats j =
  let s = stats j in
  Printf.sprintf
    "journal seg_bytes %d segments %d capacity %d tail %d laps %d\n\
     journal records %d bytes %d padding %d live %d dropped %d terms %d\n"
    s.s_seg_bytes s.s_segments s.s_capacity s.s_tail s.s_laps s.s_records
    s.s_bytes s.s_padding s.s_live s.s_dropped s.s_terms

let stitch j ~run ~base ~count =
  if count < 0 then invalid_arg "Journal.stitch: negative count";
  let slots = Array.make (max count 1) None in
  let dup = ref (-1) in
  iter j (function
    | Decision d
      when d.d_run = run && d.d_seq >= base && d.d_seq - base < count -> (
        let i = d.d_seq - base in
        match slots.(i) with
        | Some _ -> if !dup < 0 then dup := d.d_seq
        | None -> slots.(i) <- Some d)
    | Decision _ | Kaudit _ -> ());
  if !dup >= 0 then
    Error
      (Printf.sprintf "journal stitch: duplicate seq %d in run %d" !dup run)
  else begin
    let missing = ref 0 in
    let first_missing = ref (-1) in
    for i = 0 to count - 1 do
      if slots.(i) = None then begin
        incr missing;
        if !first_missing < 0 then first_missing := base + i
      end
    done;
    if !missing > 0 then
      Error
        (Printf.sprintf
           "journal stitch: %d lost record(s) in run %d (first missing seq %d)"
           !missing run !first_missing)
    else
      Ok
        (Array.init count (fun i ->
             match slots.(i) with Some d -> d | None -> assert false))
  end

(* --- rendering ---------------------------------------------------------- *)

let verdict_name = function
  | 0 -> "deny"
  | 1 -> "allow"
  | 2 -> "reject"
  | 3 -> "recorded" (* record mode: would-deny, allowed-but-audited *)
  | n -> Printf.sprintf "verdict%d" n

let errno_name = function
  | 0 -> "-"
  | c -> ( match Errno.of_code c with
           | Some e -> Errno.to_string e
           | None -> Printf.sprintf "errno%d" c)

let entry_to_string = function
  | Decision d ->
      let req =
        match d.d_req with
        | Mount { source; target; fstype; flags } ->
            Printf.sprintf "mount %s %s %s flags=0x%x" source target fstype
              flags
        | Umount { target; mounted_by } ->
            Printf.sprintf "umount %s mounted_by=%d" target mounted_by
        | Bind { port; proto; exe } ->
            Printf.sprintf "bind port=%d proto=%s exe=%s" port
              (if proto = 0 then "tcp" else "udp")
              exe
        | Ppp { device; safe } ->
            Printf.sprintf "ppp %s %s" device (if safe then "safe" else "unsafe")
      in
      Printf.sprintf
        "decision seq=%d run=%d epoch=%d domain=%d subject=%d verdict=%s \
         errno=%s %s"
        d.d_seq d.d_run d.d_epoch d.d_domain d.d_subject
        (verdict_name d.d_verdict) (errno_name d.d_errno) req
  | Kaudit k ->
      Printf.sprintf
        "kaudit time=%.0f pid=%d uid=%d op=%s obj=%s res=%s%s%s" k.k_time
        k.k_pid k.k_uid k.k_op k.k_obj
        (if k.k_allowed then "success" else "failed")
        (match k.k_engine with Some e -> " engine=" ^ e | None -> "")
        (match k.k_span with Some s -> " span=" ^ string_of_int s | None -> "")

(* --- persistence -------------------------------------------------------- *)

let magic = "PJRNL1\n"

let save j path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Printf.fprintf oc "%d %d %d %d %d %d %d\n" j.jseg_bytes j.jsegs
        (Atomic.get j.jtail) (List.length j.jterms) j.jretired_records
        j.jretired_bytes j.jretired_padding;
      List.iter
        (fun tm ->
          Printf.fprintf oc "%d %d %d %d\n" tm.tm_domain tm.tm_records
            tm.tm_bytes tm.tm_padding)
        j.jterms;
      Array.iter (output_bytes oc) j.store)

let load path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m = really_input_string ic (String.length magic) in
        if m <> magic then Error "not a protego journal (bad magic)"
        else
          let ints line =
            List.map int_of_string (String.split_on_char ' ' line)
          in
          let header =
            match ints (input_line ic) with
            | [ seg_bytes; segs; tl; nterms ] ->
                (* pre-retire header layout: no retired counters *)
                Some (seg_bytes, segs, tl, nterms, 0, 0, 0)
            | [ seg_bytes; segs; tl; nterms; rrec; rbytes; rpad ] ->
                Some (seg_bytes, segs, tl, nterms, rrec, rbytes, rpad)
            | _ -> None
          in
          match header with
          | Some (seg_bytes, segs, tl, nterms, rrec, rbytes, rpad) ->
              let j = create ~seg_bytes ~segments:segs () in
              Atomic.set j.jtail tl;
              j.jretired_records <- rrec;
              j.jretired_bytes <- rbytes;
              j.jretired_padding <- rpad;
              let terms = ref [] in
              for _ = 1 to nterms do
                match ints (input_line ic) with
                | [ dom; records; bytes; padding ] ->
                    terms :=
                      { tm_domain = dom; tm_j = j; tm_pos = 0; tm_end = 0;
                        tm_records = records; tm_bytes = bytes;
                        tm_padding = padding }
                      :: !terms
                | _ -> failwith "corrupt journal term header"
              done;
              j.jterms <- !terms;
              Array.iter (fun b -> really_input ic b 0 (Bytes.length b)) j.store;
              Ok j
          | None -> Error "corrupt journal header")
  with
  | Sys_error e -> Error e
  | End_of_file -> Error "truncated journal file"
  | Failure e -> Error e
  | Invalid_argument e -> Error e

(* --- test hooks --------------------------------------------------------- *)

let unsafe_claim tm len =
  if len < align || len land (align - 1) <> 0 || len > tm.tm_j.jseg_bytes then
    invalid_arg "Journal.unsafe_claim: bad length";
  claim tm len

let commit j ~at ~len ~padding = set_header j ~at ~len ~padding

(* --- kernel audit sink -------------------------------------------------- *)

type sink = {
  mutable sk_journal : t;
  mutable sk_term : term;
  mutable sk_emitted : int;
}

let sink ?(seg_bytes = 65536) ?(segments = 16) () =
  let j = create ~seg_bytes ~segments () in
  { sk_journal = j; sk_term = term j ~domain:0; sk_emitted = 0 }

let sink_emit sk ~time ~pid ~uid ~op ~obj ~allowed ~engine ~span =
  sk.sk_emitted <- sk.sk_emitted + 1;
  append_kaudit sk.sk_term ~time ~pid ~uid ~op ~obj ~allowed ~engine ~span

let sink_clear sk =
  let j =
    create ~seg_bytes:sk.sk_journal.jseg_bytes ~segments:sk.sk_journal.jsegs ()
  in
  sk.sk_journal <- j;
  sk.sk_term <- term j ~domain:0;
  sk.sk_emitted <- 0
