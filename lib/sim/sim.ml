(* Deterministic simulation of the decision plane and the optimizer
   gate.  One OCaml domain, one splitmix64 stream: every decision step,
   publish point, reload, journal append and recompile toggle is a
   scheduler-chosen event, so any interleaving is replayable from
   (seed, spec) alone — and any recorded action script replays
   byte-for-byte without the seed. *)

module PS = Protego_core.Policy_state
module PD = Protego_core.Pfm_dispatch
module Plane = Protego_plane.Plane
module Snapshot = Protego_plane.Snapshot
module J = Protego_journal.Journal
module Pfm = Protego_filter.Pfm
module Errno = Protego_base.Errno
module Prng = Protego_workload.Prng
module Workload = Protego_workload.Workload
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Ipaddr = Protego_net.Ipaddr
module Bindconf = Protego_policy.Bindconf
module Ktypes = Protego_kernel.Ktypes
module Phase = Protego_base.Phase

(* --- specs -------------------------------------------------------------- *)

type lane = Lane_plane | Lane_opt

type fault_kind = F_crash | F_stale | F_dup | F_drop | F_delay | F_wrap

type spec = {
  sp_lane : lane;
  sp_golden : bool;
  sp_seed : int;
  sp_workers : int;
  sp_steps : int;
  sp_reloads : int;
  sp_opts : int;
  sp_wseed : int;
  sp_flood : bool;
  sp_seg_bytes : int;
  sp_segments : int;
  sp_phases : bool;
  sp_faults : (fault_kind * int) list;
}

let default =
  { sp_lane = Lane_plane; sp_golden = false; sp_seed = 1; sp_workers = 2;
    sp_steps = 64; sp_reloads = 3; sp_opts = 0; sp_wseed = 42;
    sp_flood = false; sp_seg_bytes = 4096; sp_segments = 8; sp_phases = false;
    sp_faults = [] }

let lane_name = function Lane_plane -> "plane" | Lane_opt -> "opt"

let fault_name = function
  | F_crash -> "crash"
  | F_stale -> "stale"
  | F_dup -> "dup"
  | F_drop -> "drop"
  | F_delay -> "delay"
  | F_wrap -> "wrap"

let fault_of_name = function
  | "crash" -> Some F_crash
  | "stale" -> Some F_stale
  | "dup" -> Some F_dup
  | "drop" -> Some F_drop
  | "delay" -> Some F_delay
  | "wrap" -> Some F_wrap
  | _ -> None

let has_fault k sp = List.exists (fun (k', n) -> k' = k && n > 0) sp.sp_faults

let spec_to_string sp =
  let base =
    Printf.sprintf
      "lane=%s,golden=%d,seed=%d,workers=%d,steps=%d,reloads=%d,opts=%d,\
       wseed=%d,flood=%d,segbytes=%d,segments=%d"
      (lane_name sp.sp_lane)
      (if sp.sp_golden then 1 else 0)
      sp.sp_seed sp.sp_workers sp.sp_steps sp.sp_reloads sp.sp_opts sp.sp_wseed
      (if sp.sp_flood then 1 else 0)
      sp.sp_seg_bytes sp.sp_segments
  in
  (* [phases] and [faults] print only when set, so pre-phase spec
     strings round-trip byte-identically. *)
  let base = if sp.sp_phases then base ^ ",phases=on" else base in
  match sp.sp_faults with
  | [] -> base
  | fs ->
      base ^ ",faults="
      ^ String.concat ";"
          (List.map (fun (k, n) -> fault_name k ^ ":" ^ string_of_int n) fs)

let spec_of_string s =
  let parse_faults v =
    let items = String.split_on_char ';' v in
    List.fold_left
      (fun acc item ->
        match acc with
        | Error _ -> acc
        | Ok fs -> (
            match String.split_on_char ':' item with
            | [ name; n ] -> (
                match (fault_of_name name, int_of_string_opt n) with
                | Some k, Some n when n >= 0 -> Ok (fs @ [ (k, n) ])
                | _ -> Error ("sim: bad fault " ^ item))
            | _ -> Error ("sim: bad fault " ^ item)))
      (Ok []) items
  in
  let field sp k v =
    let int f = match int_of_string_opt v with
      | Some n when n >= 0 -> Ok (f n)
      | _ -> Error (Printf.sprintf "sim: bad value %s=%s" k v)
    in
    match k with
    | "lane" -> (
        match v with
        | "plane" -> Ok { sp with sp_lane = Lane_plane }
        | "opt" -> Ok { sp with sp_lane = Lane_opt }
        | _ -> Error ("sim: unknown lane " ^ v))
    | "golden" -> int (fun n -> { sp with sp_golden = n <> 0 })
    | "seed" -> int (fun n -> { sp with sp_seed = n })
    | "workers" -> int (fun n -> { sp with sp_workers = n })
    | "steps" -> int (fun n -> { sp with sp_steps = n })
    | "reloads" -> int (fun n -> { sp with sp_reloads = n })
    | "opts" -> int (fun n -> { sp with sp_opts = n })
    | "wseed" -> int (fun n -> { sp with sp_wseed = n })
    | "flood" -> int (fun n -> { sp with sp_flood = n <> 0 })
    | "segbytes" -> int (fun n -> { sp with sp_seg_bytes = n })
    | "segments" -> int (fun n -> { sp with sp_segments = n })
    | "phases" -> (
        match v with
        | "on" | "1" -> Ok { sp with sp_phases = true }
        | "off" | "0" -> Ok { sp with sp_phases = false }
        | _ -> Error (Printf.sprintf "sim: bad value phases=%s" v))
    | "faults" -> (
        match parse_faults v with
        | Ok fs -> Ok { sp with sp_faults = fs }
        | Error e -> Error e)
    | _ -> Error ("sim: unknown spec field " ^ k)
  in
  List.fold_left
    (fun acc kv ->
      match acc with
      | Error _ -> acc
      | Ok sp -> (
          match String.index_opt kv '=' with
          | Some i ->
              field sp
                (String.sub kv 0 i)
                (String.sub kv (i + 1) (String.length kv - i - 1))
          | None -> Error ("sim: bad spec field " ^ kv)))
    (Ok default)
    (List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim s)))

(* --- actions ------------------------------------------------------------ *)

type action =
  | Decide of int
  | Reload
  | Reload_dropped
  | Reload_delayed
  | Flush
  | Crash of int
  | Stale of int
  | Dup of int
  | Flood
  | Opt
  | Probe
  | Phase_step of int

let action_to_string = function
  | Decide w -> "d" ^ string_of_int w
  | Reload -> "r"
  | Reload_dropped -> "r-"
  | Reload_delayed -> "r+"
  | Flush -> "f"
  | Crash w -> "c" ^ string_of_int w
  | Stale w -> "s" ^ string_of_int w
  | Dup w -> "u" ^ string_of_int w
  | Flood -> "w"
  | Opt -> "o"
  | Probe -> "p"
  | Phase_step s -> "h" ^ string_of_int s

let action_of_string s =
  let indexed c mk =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some w when w >= 0 -> Ok (mk w)
    | _ -> Error (Printf.sprintf "sim: bad action %c<w>: %s" c s)
  in
  match s with
  | "r" -> Ok Reload
  | "r-" -> Ok Reload_dropped
  | "r+" -> Ok Reload_delayed
  | "f" -> Ok Flush
  | "w" -> Ok Flood
  | "o" -> Ok Opt
  | "p" -> Ok Probe
  | _ when String.length s >= 2 && s.[0] = 'd' -> indexed 'd' (fun w -> Decide w)
  | _ when String.length s >= 2 && s.[0] = 'c' -> indexed 'c' (fun w -> Crash w)
  | _ when String.length s >= 2 && s.[0] = 's' -> indexed 's' (fun w -> Stale w)
  | _ when String.length s >= 2 && s.[0] = 'u' -> indexed 'u' (fun w -> Dup w)
  | _ when String.length s >= 2 && s.[0] = 'h' ->
      indexed 'h' (fun s -> Phase_step s)
  | _ -> Error ("sim: unknown action " ^ s)

let script_to_string = function
  | [] -> "-"
  | acts -> String.concat "." (List.map action_to_string acts)

let script_of_string s =
  match String.trim s with
  | "" | "-" -> Ok []
  | s ->
      List.fold_left
        (fun acc tok ->
          match acc with
          | Error _ -> acc
          | Ok l -> (
              match action_of_string tok with
              | Ok a -> Ok (l @ [ a ])
              | Error e -> Error e))
        (Ok [])
        (String.split_on_char '.' s)

(* --- events ------------------------------------------------------------- *)

type event =
  | E_decide of {
      d_worker : int;
      d_seq : int;
      d_hook : int;
      d_verdict : int;
      d_errno : int;
      d_epoch : int;
      d_phase : int;
      d_live_ok : bool;
      d_journaled : bool;
      d_stale : bool;
      d_torn : bool;
    }
  | E_phase of { h_subject : int; h_from : int; h_to : int }
  | E_mutate of { m_label : string }
  | E_publish of { p_epoch : int }
  | E_crash of { c_worker : int }
  | E_dup of { u_worker : int; u_seq : int }
  | E_flood of { f_bytes : int; f_overrun : bool }
  | E_overrun of { o_worker : int }
  | E_opt of {
      t_label : string;
      t_installed : string list;
      t_stale : bool;
      t_proved : bool;
    }
  | E_nf of { n_port : int; n_ok : bool }
  | E_pd of { pd_seq : int; pd_ok : bool }

let event_to_string = function
  | E_decide d ->
      Printf.sprintf "decide w%d seq %d hook %d verdict %d errno %d epoch %d%s%s%s%s%s"
        d.d_worker d.d_seq d.d_hook d.d_verdict d.d_errno d.d_epoch
        (* phase 0 is silent so pre-phase golden traces are unchanged *)
        (if d.d_phase > 0 then Printf.sprintf " phase %d" d.d_phase else "")
        (if d.d_live_ok then "" else " live-divergent")
        (if d.d_journaled then "" else " unjournaled")
        (if d.d_stale then " stale" else "")
        (if d.d_torn then " torn" else "")
  | E_phase h ->
      Printf.sprintf "phase subject %d %d -> %d" h.h_subject h.h_from h.h_to
  | E_mutate m -> "mutate " ^ m.m_label
  | E_publish p -> Printf.sprintf "publish epoch %d" p.p_epoch
  | E_crash c -> Printf.sprintf "crash w%d" c.c_worker
  | E_dup u -> Printf.sprintf "dup w%d seq %d" u.u_worker u.u_seq
  | E_flood f ->
      Printf.sprintf "flood %d bytes%s" f.f_bytes
        (if f.f_overrun then " overrun" else "")
  | E_overrun o -> Printf.sprintf "overrun w%d" o.o_worker
  | E_opt o ->
      Printf.sprintf "opt %s installed [%s]%s%s" o.t_label
        (String.concat " " o.t_installed)
        (if o.t_stale then " stale" else "")
        (if o.t_proved then "" else " unproved")
  | E_nf n -> Printf.sprintf "nf port %d %s" n.n_port (if n.n_ok then "ok" else "DIVERGED")
  | E_pd p -> Printf.sprintf "pd seq %d %s" p.pd_seq (if p.pd_ok then "ok" else "DIVERGED")

type ctx = {
  x_spec : spec;
  x_script : action list;
  x_trace : event array;
  x_plane : Plane.t option;
  x_run : int;
  x_requests : Plane.request array;
  x_journal : J.decision list;
  x_dropped : int;
}

let trace_to_string ctx =
  String.concat "\n" (Array.to_list (Array.map event_to_string ctx.x_trace))

type mode = Seeded | Scripted of action list

(* --- golden fixtures ----------------------------------------------------

   The exact policy, probe battery and three semantic flips of the
   legacy hand-fixed interleaving harness (test_interleave.ml), so its
   20 merge orders survive as pinned scripts. *)

let cdrom flags mode =
  { PS.mr_source = "/dev/cdrom"; mr_target = "/media/cdrom";
    mr_fstype = "iso9660"; mr_flags = flags; mr_mode = mode;
    mr_phase = PS.Phase.Always }

let exim port proto =
  { Bindconf.port; proto; exe = "/usr/sbin/exim4"; owner = 0;
    phase = Protego_base.Phase.Always }

let golden_plane_setup st =
  st.PS.mounts <- [ cdrom [] `Users ];
  st.PS.binds <- [ exim 777 Bindconf.Tcp ];
  PS.bump_generation st PS.Mounts;
  PS.bump_generation st PS.Binds

(* P1 adds a flag requirement (bare mount flips allow -> deny), P2 moves
   the port grant tcp -> udp, P3 drops the cdrom rule. *)
let golden_plane_flip k st =
  match k with
  | 0 ->
      st.PS.mounts <- [ cdrom [ Ktypes.Mf_readonly; Mf_nosuid; Mf_nodev ] `Users ];
      PS.bump_generation st PS.Mounts;
      "P1"
  | 1 ->
      st.PS.binds <- [ exim 777 Bindconf.Udp ];
      PS.bump_generation st PS.Binds;
      "P2"
  | 2 ->
      st.PS.mounts <- [];
      PS.bump_generation st PS.Mounts;
      "P3"
  | _ -> invalid_arg "Sim.golden_plane_flip"

let golden_flip_count = 3

(* One probe battery: each request asked twice (the repeat is typically
   a front-slot or memo hit), values interned so identity-keyed fast
   paths engage. *)
let golden_battery () =
  let m_bare =
    Plane.Mount { subject = 1000; source = "/dev/cdrom"; target = "/media/cdrom";
                  fstype = "iso9660"; flags = [] }
  in
  let m_full =
    Plane.Mount { subject = 1000; source = "/dev/cdrom"; target = "/media/cdrom";
                  fstype = "iso9660";
                  flags = [ Ktypes.Mf_readonly; Mf_nosuid; Mf_nodev ] }
  in
  let b_tcp =
    Plane.Bind { subject = 0; port = 777; proto = Bindconf.Tcp;
                 exe = "/usr/sbin/exim4" }
  in
  let b_udp =
    Plane.Bind { subject = 0; port = 777; proto = Bindconf.Udp;
                 exe = "/usr/sbin/exim4" }
  in
  [| m_bare; m_bare; m_full; m_full; b_tcp; b_tcp; b_udp; b_udp |]

let golden_battery_len = 8

(* 3 scripted batteries + the settle battery the engine always runs. *)
let golden_requests () =
  let b = golden_battery () in
  Array.concat [ b; b; b; b ]

(* All merge orders preserving the relative order within each script. *)
let rec interleavings xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> [ rest ]
  | x :: xs', y :: ys' ->
      List.map (fun r -> x :: r) (interleavings xs' ys)
      @ List.map (fun r -> y :: r) (interleavings xs ys')

let golden_plane_scripts =
  interleavings [ `R 0; `R 1; `R 2 ] [ `D; `D; `D ]
  |> List.map (fun steps ->
         let name =
           String.concat ""
             (List.map
                (function `R i -> Printf.sprintf "P%d" (i + 1) | `D -> "D")
                steps)
         in
         let script =
           List.concat_map
             (function
               | `R _ -> [ Reload ]
               | `D -> List.init golden_battery_len (fun _ -> Decide 0))
             steps
         in
         (name, script))

let golden_opt_scripts =
  let labels = [| "O1"; "E2"; "O3" |] in
  interleavings [ `O 0; `O 1; `O 2 ] [ `P; `P; `P ]
  |> List.map (fun steps ->
         let name =
           String.concat ""
             (List.map (function `O i -> labels.(i) | `P -> "D") steps)
         in
         let script =
           List.map (function `O _ -> Opt | `P -> Probe) steps
         in
         (name, script))

(* --- plane lane --------------------------------------------------------- *)

let verdict_code = function Pfm.Allow -> 1 | Pfm.Deny -> 0 | Pfm.Reject -> 2
let errno_code = function None -> 0 | Some e -> Errno.to_code e

type pworker = {
  pw_id : int;
  mutable pw_next : int;
  mutable pw_alive : bool;
  mutable pw_last : (int * Plane.request * Plane.outcome) option;
}

let workload_spec sp =
  let phase = if sp.sp_flood then Workload.Deny_flood else Workload.Steady in
  let base =
    Workload.default ~seed:sp.sp_wseed ~phases:[ (phase, sp.sp_steps) ] ()
  in
  { base with Workload.rules = 16; pool = 48 }

let run_plane sp mode =
  let workers = if sp.sp_golden then 1 else max 1 sp.sp_workers in
  let want_flood = has_fault F_wrap sp in
  let need_terms = workers + if want_flood then 1 else 0 in
  if need_terms > sp.sp_segments then
    invalid_arg
      (Printf.sprintf
         "Sim: %d journal segments cannot host %d worker terms%s"
         sp.sp_segments workers (if want_flood then " + the flood term" else ""));
  let st = PS.create () in
  let requests, flip, flip_count =
    if sp.sp_golden then begin
      golden_plane_setup st;
      (golden_requests (), (fun k -> golden_plane_flip k st), golden_flip_count)
    end
    else begin
      let wl = workload_spec sp in
      Workload.install_policy wl st;
      let sched = Workload.generate wl ~workers:1 in
      let orig_mounts = st.PS.mounts and orig_binds = st.PS.binds in
      let flip k =
        match k mod 4 with
        | 0 ->
            st.PS.mounts <- (match orig_mounts with [] -> [] | _ :: tl -> tl);
            PS.bump_generation st PS.Mounts;
            "drop-mount"
        | 1 ->
            st.PS.mounts <- orig_mounts;
            PS.bump_generation st PS.Mounts;
            "restore-mount"
        | 2 ->
            st.PS.binds <- (match orig_binds with [] -> [] | _ :: tl -> tl);
            PS.bump_generation st PS.Binds;
            "drop-bind"
        | _ ->
            st.PS.binds <- orig_binds;
            PS.bump_generation st PS.Binds;
            "restore-bind"
      in
      (sched.Workload.s_requests, flip, max_int)
    end
  in
  let plane =
    Plane.create ~domains:workers ~journal_seg_bytes:sp.sp_seg_bytes
      ~journal_segments:sp.sp_segments st
  in
  let flood_term =
    if want_flood then Some (J.term (Plane.journal plane) ~domain:workers)
    else None
  in
  let run_id = Plane.sim_begin plane in
  let stale_snap = Plane.current plane in
  let nreq = Array.length requests in
  let pws =
    Array.init workers (fun i ->
        { pw_id = i; pw_next = i; pw_alive = true; pw_last = None })
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let script_acc = ref [] in
  let record a = script_acc := a :: !script_acc in
  let reload_done = ref 0 in
  let reload_cap = min sp.sp_reloads flip_count in
  let pending = ref false in
  let journal_dead = ref false in
  let can_decide w = w.pw_alive && w.pw_next < nreq in
  let do_decide ?(stale = false) ?(crash = false) w =
    let seq = w.pw_next in
    let req = requests.(seq) in
    w.pw_next <- w.pw_next + workers;
    let o =
      if stale then Plane.decide_against plane ~worker:w.pw_id stale_snap req
      else Plane.decide_on plane ~worker:w.pw_id req
    in
    let live_ok =
      Plane.request_oracle ~phase:(Phase.of_index o.Plane.o_phase) st req
      = (o.Plane.o_verdict = Pfm.Allow)
    in
    let journaled, torn =
      if crash then begin
        (* A mid-record crash: the claim is placed but never committed,
           leaving the term's tail torn for readers to suppress. *)
        ignore (J.unsafe_claim (Plane.worker_term plane w.pw_id) 64 : int);
        w.pw_alive <- false;
        (false, true)
      end
      else if !journal_dead then (false, false)
      else
        match
          Plane.journal_decision plane ~worker:w.pw_id ~run:run_id ~seq req o
        with
        | () ->
            w.pw_last <- Some (seq, req, o);
            (true, false)
        | exception Failure _ ->
            journal_dead := true;
            emit (E_overrun { o_worker = w.pw_id });
            (false, false)
    in
    emit
      (E_decide
         { d_worker = w.pw_id; d_seq = seq; d_hook = Plane.hook_index req;
           d_verdict = verdict_code o.Plane.o_verdict;
           d_errno = errno_code o.Plane.o_errno; d_epoch = o.Plane.o_epoch;
           d_phase = o.Plane.o_phase; d_live_ok = live_ok;
           d_journaled = journaled; d_stale = stale; d_torn = torn });
    if crash then emit (E_crash { c_worker = w.pw_id })
  in
  let do_reload kind =
    let k = !reload_done in
    incr reload_done;
    let label = flip k in
    emit (E_mutate { m_label = label });
    match kind with
    | `Now ->
        let snap = Plane.publish plane in
        emit (E_publish { p_epoch = snap.Snapshot.epoch })
    | `Dropped -> ()
    | `Delayed -> pending := true
  in
  let do_flush () =
    pending := false;
    let snap = Plane.publish plane in
    emit (E_publish { p_epoch = snap.Snapshot.epoch })
  in
  let do_dup w =
    match w.pw_last with
    | Some (seq, req, o) when not !journal_dead -> (
        match
          Plane.journal_decision plane ~worker:w.pw_id ~run:run_id ~seq req o
        with
        | () -> emit (E_dup { u_worker = w.pw_id; u_seq = seq })
        | exception Failure _ ->
            journal_dead := true;
            emit (E_overrun { o_worker = w.pw_id }))
    | _ -> ()
  in
  (* Lifecycle steps target the generated workload's subject space;
     golden fixtures predate phases and never step. *)
  let nsubjects =
    if sp.sp_phases && not sp.sp_golden then (workload_spec sp).Workload.subjects
    else 0
  in
  let can_phase s =
    s >= 0 && s < nsubjects
    && not
         (Phase.equal (Plane.subject_phase plane ~subject:s) Phase.final)
  in
  let phase_subjects () =
    List.filter can_phase (List.init nsubjects (fun s -> s))
  in
  let do_phase s =
    let cur = Plane.subject_phase plane ~subject:s in
    let nxt = Phase.succ cur in
    match Plane.set_subject_phase plane ~subject:s nxt with
    | Ok () ->
        emit
          (E_phase
             { h_subject = s; h_from = Phase.index cur; h_to = Phase.index nxt })
    | Error _ -> ()
  in
  let do_flood term =
    let j = Plane.journal plane in
    let t0 = J.tail j in
    let obj = String.make 160 'x' in
    let overrun = ref false in
    let budget = ref ((2 * J.capacity j / 200) + 16) in
    (try
       while !budget > 0 do
         decr budget;
         J.append_kaudit term ~time:0. ~pid:0 ~uid:0 ~op:"flood" ~obj
           ~allowed:false ~engine:None ~span:None
       done
     with Failure _ ->
       overrun := true;
       journal_dead := true);
    emit (E_flood { f_bytes = J.tail j - t0; f_overrun = !overrun });
    if !overrun then emit (E_overrun { o_worker = -1 })
  in
  (match mode with
  | Scripted script ->
      List.iter
        (fun a ->
          let ok w = w >= 0 && w < workers in
          match a with
          | Decide w when ok w && can_decide pws.(w) ->
              do_decide pws.(w);
              record a
          | Reload when !reload_done < reload_cap && not !pending ->
              do_reload `Now;
              record a
          | Reload_dropped when !reload_done < reload_cap && not !pending ->
              do_reload `Dropped;
              record a
          | Reload_delayed when !reload_done < reload_cap && not !pending ->
              do_reload `Delayed;
              record a
          | Flush when !pending ->
              do_flush ();
              record a
          | Crash w when ok w && can_decide pws.(w) ->
              do_decide ~crash:true pws.(w);
              record a
          | Stale w when ok w && can_decide pws.(w) ->
              do_decide ~stale:true pws.(w);
              record a
          | Dup w when ok w && pws.(w).pw_last <> None && not !journal_dead ->
              do_dup pws.(w);
              record a
          | Flood when flood_term <> None && not !journal_dead ->
              do_flood (Option.get flood_term);
              record a
          | Phase_step s when can_phase s ->
              do_phase s;
              record a
          | Decide _ | Reload | Reload_dropped | Reload_delayed | Flush
          | Crash _ | Stale _ | Dup _ | Flood | Opt | Probe | Phase_step _ ->
              (* inexecutable here: skipped, and not recorded *)
              ())
        script
  | Seeded ->
      let rng = Prng.create sp.sp_seed in
      let fault_pool =
        ref
          (List.concat_map (fun (k, n) -> List.init n (fun _ -> k)) sp.sp_faults)
      in
      let eligible pred =
        Array.to_list pws |> List.filter pred
      in
      let fault_enabled = function
        | F_crash | F_stale -> eligible can_decide <> []
        | F_dup ->
            (not !journal_dead)
            && eligible (fun w -> w.pw_last <> None) <> []
        | F_drop | F_delay -> !reload_done < reload_cap && not !pending
        | F_wrap -> flood_term <> None && not !journal_dead
      in
      let pick_target pred =
        let elig = eligible pred in
        List.nth elig (Prng.int rng (List.length elig))
      in
      let continue = ref true in
      while !continue do
        let cands = ref [] in
        let add w tag = cands := (w, tag) :: !cands in
        List.iteri
          (fun i k -> if fault_enabled k then add 1 (`Fault (i, k)))
          !fault_pool;
        if !pending then add 3 `Flush;
        if !reload_done < reload_cap && not !pending then add 2 `Reload;
        if phase_subjects () <> [] then add 2 `Phase;
        Array.iter (fun w -> if can_decide w then add 8 (`Dec w)) pws;
        let cands = !cands in
        let total = List.fold_left (fun a (w, _) -> a + w) 0 cands in
        if total = 0 then continue := false
        else begin
          let r = Prng.int rng total in
          let rec pick acc = function
            | [] -> assert false
            | (w, tag) :: rest ->
                if r < acc + w then tag else pick (acc + w) rest
          in
          match pick 0 cands with
          | `Dec w ->
              do_decide w;
              record (Decide w.pw_id)
          | `Reload ->
              do_reload `Now;
              record Reload
          | `Flush ->
              do_flush ();
              record Flush
          | `Phase ->
              let elig = phase_subjects () in
              let s = List.nth elig (Prng.int rng (List.length elig)) in
              do_phase s;
              record (Phase_step s)
          | `Fault (i, k) ->
              fault_pool := List.filteri (fun j _ -> j <> i) !fault_pool;
              (match k with
              | F_crash ->
                  let w = pick_target can_decide in
                  do_decide ~crash:true w;
                  record (Crash w.pw_id)
              | F_stale ->
                  let w = pick_target can_decide in
                  do_decide ~stale:true w;
                  record (Stale w.pw_id)
              | F_dup ->
                  let w = pick_target (fun w -> w.pw_last <> None) in
                  do_dup w;
                  record (Dup w.pw_id)
              | F_drop ->
                  do_reload `Dropped;
                  record Reload_dropped
              | F_delay ->
                  do_reload `Delayed;
                  record Reload_delayed
              | F_wrap ->
                  do_flood (Option.get flood_term);
                  record Flood)
        end
      done);
  (* The settle battery: in golden mode the scripts drive only the three
     interleaved batteries; whatever remains is decided in order on
     worker 0, mirroring the legacy harness's final probe pass. *)
  if sp.sp_golden then begin
    let w = pws.(0) in
    while can_decide w do
      do_decide w
    done
  end;
  Plane.sim_end plane;
  let j = Plane.journal plane in
  let jds = List.filter (fun d -> d.J.d_run = run_id) (J.decisions j) in
  { x_spec = sp; x_script = List.rev !script_acc;
    x_trace = Array.of_list (List.rev !events); x_plane = Some plane;
    x_run = run_id; x_requests = requests; x_journal = jds;
    x_dropped = J.dropped j }

(* --- opt lane ----------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* 64 singleton-port accepts over a Drop policy: the eq-cascade shape
   the switch conversion targets, so optimize really installs. *)
let ofiller_rules =
  List.init 64 (fun i ->
      { Netfilter.matches =
          [ Netfilter.Dst_port { lo = 40000 + i; hi = 40000 + i };
            Netfilter.Proto Packet.Tcp ];
        target = Netfilter.Accept; comment = "" })

(* The chain edit: dport 7 flips Drop (policy) -> Accept, and demotes
   any installed rewrite to stale. *)
let edit_rule =
  { Netfilter.matches = [ Netfilter.Dst_port { lo = 7; hi = 7 } ];
    target = Netfilter.Accept; comment = "" }

let opkt dport =
  { Packet.src = Ipaddr.v 10 0 0 2; dst = Ipaddr.v 8 8 8 8; ttl = 64;
    transport =
      Packet.Tcp_seg
        { src_port = 5000; dst_port = dport; syn = false; payload = "" } }

let oprobe_ports = [ 7; 22; 40000; 40031; 40063; 41000 ]

let pd_decide disp st = function
  | Plane.Mount { subject; source; target; fstype; flags } ->
      PD.decide_mount disp ~subject st ~source ~target ~fstype ~flags
  | Plane.Umount { subject; target; mounted_by } ->
      PD.decide_umount disp st ~target ~mounted_by ~ruid:subject
  | Plane.Bind { subject; port; proto; exe } ->
      PD.decide_bind disp st ~port ~proto ~exe ~uid:subject
  | Plane.Ppp_ioctl { subject; device; opt } ->
      PD.decide_ppp_ioctl disp ~subject st ~device ~opt

let run_opt sp mode =
  let disp = PD.create () in
  let events = ref [] in
  let emit e = events := e :: !events in
  let script_acc = ref [] in
  let record a = script_acc := a :: !script_acc in
  (* Golden: the optimizer-gate interleaving fixture over the netfilter
     chain.  Non-golden: a generated workload through the sequential
     dispatcher with optimize/deoptimize toggles. *)
  let golden = sp.sp_golden in
  let nf = Netfilter.create ~output_policy:Netfilter.Drop () in
  let st = PS.create () in
  let requests =
    if golden then begin
      List.iter (Netfilter.append nf Netfilter.Output) ofiller_rules;
      (* Warm with distinct ports so the profile counters heat up and
         the compiled program exists before the first optimize. *)
      for d = 1 to 300 do
        ignore
          (PD.decide_nf_output disp nf (opkt d) ~origin:Packet.Kernel_stack
            : Netfilter.verdict)
      done;
      [||]
    end
    else begin
      let wl = workload_spec sp in
      Workload.install_policy wl st;
      (Workload.generate wl ~workers:1).Workload.s_requests
    end
  in
  let nreq = Array.length requests in
  let next = ref 0 in
  let plan = ref (if golden then [ `Optimize "O1"; `Edit "E2"; `Optimize "O3" ] else []) in
  let opts_done = ref 0 in
  let deopt = ref false in
  let probes_done = ref 0 in
  let emit_opt label installed =
    (* staleness is sampled {e before} the action: an optimize that
       finds its previous install demoted records the race. *)
    let stale = contains (PD.render disp) "stale" in
    let logs = PD.drain_opt_log disp in
    let proved =
      List.for_all
        (fun n ->
          List.exists (fun l -> contains l ("opt " ^ n ^ " installed")) logs)
        installed
    in
    emit (E_opt { t_label = label; t_installed = installed; t_stale = stale;
                  t_proved = proved })
  in
  let do_opt () =
    if golden then
      match !plan with
      | [] -> ()
      | `Optimize label :: rest ->
          plan := rest;
          let stale = contains (PD.render disp) "stale" in
          let results = PD.optimize disp in
          let installed =
            List.filter_map
              (fun (n, s) -> if starts_with "installed" s then Some n else None)
              results
          in
          let logs = PD.drain_opt_log disp in
          let proved =
            List.for_all
              (fun n ->
                List.exists
                  (fun l -> contains l ("opt " ^ n ^ " installed"))
                  logs)
              installed
          in
          emit (E_opt { t_label = label; t_installed = installed;
                        t_stale = stale; t_proved = proved })
      | `Edit label :: rest ->
          plan := rest;
          Netfilter.insert nf Netfilter.Output edit_rule;
          emit_opt label []
    else begin
      incr opts_done;
      if !deopt then begin
        deopt := false;
        PD.deoptimize disp;
        emit_opt "deoptimize" []
      end
      else begin
        deopt := true;
        let stale = contains (PD.render disp) "stale" in
        let results = PD.optimize disp in
        let installed =
          List.filter_map
            (fun (n, s) -> if starts_with "installed" s then Some n else None)
            results
        in
        let logs = PD.drain_opt_log disp in
        let proved =
          List.for_all
            (fun n ->
              List.exists (fun l -> contains l ("opt " ^ n ^ " installed")) logs)
            installed
        in
        emit (E_opt { t_label = "optimize"; t_installed = installed;
                      t_stale = stale; t_proved = proved })
      end
    end
  in
  let do_probe () =
    List.iter
      (fun dport ->
        let oracle =
          Netfilter.walk nf Netfilter.Output (opkt dport)
            ~origin:Packet.Kernel_stack
        in
        let ask () =
          PD.decide_nf_output disp nf (opkt dport) ~origin:Packet.Kernel_stack
        in
        let ok = ask () = oracle && ask () = oracle in
        emit (E_nf { n_port = dport; n_ok = ok }))
      oprobe_ports
  in
  let do_pd () =
    let seq = !next in
    incr next;
    let req = requests.(seq) in
    let ok = pd_decide disp st req = Plane.request_oracle st req in
    emit (E_pd { pd_seq = seq; pd_ok = ok })
  in
  let opt_enabled () =
    if golden then !plan <> [] else !opts_done < sp.sp_opts
  in
  (match mode with
  | Scripted script ->
      List.iter
        (fun a ->
          match a with
          | Opt when opt_enabled () ->
              do_opt ();
              record a
          | Probe when golden ->
              incr probes_done;
              do_probe ();
              record a
          | Decide 0 when (not golden) && !next < nreq ->
              do_pd ();
              record a
          | _ -> ())
        script
  | Seeded ->
      let rng = Prng.create sp.sp_seed in
      let continue = ref true in
      while !continue do
        let cands = ref [] in
        let add w tag = cands := (w, tag) :: !cands in
        if opt_enabled () then add 1 `Opt;
        if golden && !probes_done < 3 then add 4 `Probe;
        if (not golden) && !next < nreq then add 8 `Pd;
        let cands = !cands in
        let total = List.fold_left (fun a (w, _) -> a + w) 0 cands in
        if total = 0 then continue := false
        else begin
          let r = Prng.int rng total in
          let rec pick acc = function
            | [] -> assert false
            | (w, tag) :: rest ->
                if r < acc + w then tag else pick (acc + w) rest
          in
          match pick 0 cands with
          | `Opt ->
              do_opt ();
              record Opt
          | `Probe ->
              incr probes_done;
              do_probe ();
              record Probe
          | `Pd ->
              do_pd ();
              record (Decide 0)
        end
      done);
  (* Whatever the order, the settled chain must decide identically. *)
  if golden then do_probe ();
  ignore (PD.drain_opt_log disp : string list);
  { x_spec = sp; x_script = List.rev !script_acc;
    x_trace = Array.of_list (List.rev !events); x_plane = None; x_run = 0;
    x_requests = requests; x_journal = []; x_dropped = 0 }

let run sp mode =
  match sp.sp_lane with
  | Lane_plane -> run_plane sp mode
  | Lane_opt -> run_opt sp mode
