(** LTL-ish temporal properties over a simulation trace.

    Each property is a named, post-hoc check over {!Sim.ctx} — the
    event trace, the run's journal records, and the plane's snapshot
    history.  [p_applies] names the spec shapes the property is an
    invariant of: sweeps check only applicable properties, so a spec
    that deliberately injects a fault (say [F_drop]) is not failed for
    the very behaviour it injects — the broken property is instead
    selected explicitly by that fault's catch test and shrunk
    ({!Shrink}).  Property language rationale: DESIGN.md §10. *)

type outcome = Holds | Violated of { at : int; why : string }
(** [at] is the index of the offending event in the trace (0 for
    whole-trace violations such as a journal phantom). *)

val outcome_to_string : outcome -> string

type t = {
  p_name : string;
  p_applies : Sim.spec -> bool;
  p_eval : Sim.ctx -> outcome;
}

(** {1 Combinators} *)

val always :
  string -> applies:(Sim.spec -> bool) -> (Sim.ctx -> Sim.event -> bool) ->
  why:(Sim.ctx -> Sim.event -> string) -> t

val always_fold :
  string -> applies:(Sim.spec -> bool) -> init:'s ->
  step:(Sim.ctx -> 's -> Sim.event -> ('s, string) result) -> t
(** The fold is hidden behind the closure, so properties with state
    (last published epoch, pending-mutation count) stay declarative. *)

val leads_to :
  string -> applies:(Sim.spec -> bool) -> trigger:(Sim.event -> bool) ->
  ack:(Sim.event -> bool) -> why:string -> t
(** [always (trigger => eventually ack)]: violated at the first trigger
    left unacked at the end of the trace. *)

(** {1 The registry}

    Plane lane: ["epoch-monotone"], ["verdict-matches-epoch"],
    ["live-oracle"], ["reload-acked"],
    ["no-decide-under-pending-mutate"], ["phase-monotone"] (lifecycle
    steps only tighten), ["phase-consistent"] (every decision is served
    at its subject's current phase — with monotonicity, no verdict is
    ever served under a later-loosened phase), ["journal-faithful"],
    ["replay-clean"], ["no-torn"], ["all-journaled"], ["no-overrun"].
    Opt lane: ["nf-oracle"], ["pd-oracle"], ["opt-proof-gated"],
    ["opt-never-stale"] (explicit selection only). *)

val all : t list

val applicable : Sim.spec -> t list

val find : string -> (t, string) result

val check : Sim.ctx -> t list -> (t * outcome) list
