(** Deterministic simulation of the decision plane and the optimizer
    gate.

    The simulator owns {e all} nondeterminism: it runs on a single
    OCaml domain and drives the plane's workers as step functions —
    every decision, publish, reload, journal append, crash, duplicate
    append, journal flood and recompile toggle is a scheduler-chosen
    event drawn from one splitmix64 stream.  A seeded run is therefore
    bit-replayable from [(seed, spec)] alone, and every run records the
    action script it executed, so the exact interleaving replays
    byte-for-byte {e without} the seed ({!Scripted}) — which is what
    makes shrinking ({!Shrink}) and pinned regression schedules
    possible.  Architecture and fault taxonomy: DESIGN.md §10. *)

module PS = Protego_core.Policy_state
module Plane = Protego_plane.Plane
module J = Protego_journal.Journal

(** {1 Specs} *)

type lane =
  | Lane_plane  (** virtual plane workers over Plane/Snapshot/Journal *)
  | Lane_opt    (** the sequential dispatcher's recompile gate *)

(** Injected fault classes; each instance is drawn from the seeded plan
    (or scripted explicitly) and recorded in the trace. *)
type fault_kind =
  | F_crash  (** kill a worker mid-record: torn, unpadded journal tail *)
  | F_stale  (** serve one decision against the run-start snapshot *)
  | F_dup    (** re-append a worker's last journaled decision *)
  | F_drop   (** a reload mutates the live state but never publishes *)
  | F_delay  (** a reload's publish is deferred to a later flush step *)
  | F_wrap   (** flood the journal until wraparound overruns a laggard *)

type spec = {
  sp_lane : lane;
  sp_golden : bool;
      (** replay the legacy hand-fixed interleaving fixture (1 worker,
          probe batteries, the P1/P2/P3 or O1/E2/O3 scripts) instead of
          a generated workload *)
  sp_seed : int;      (** scheduler seed (Seeded mode only) *)
  sp_workers : int;   (** virtual plane workers *)
  sp_steps : int;     (** workload length (requests) *)
  sp_reloads : int;   (** reload budget *)
  sp_opts : int;      (** optimize/deoptimize toggle budget (opt lane) *)
  sp_wseed : int;     (** workload generator seed *)
  sp_flood : bool;    (** Deny_flood workload phase instead of Steady *)
  sp_seg_bytes : int; (** journal segment bytes (power of two, >= 4096) *)
  sp_segments : int;  (** journal segments (power of two) *)
  sp_phases : bool;
      (** schedule lifecycle phase steps ([phases=on]): the scheduler
          advances workload subjects through the tighten-only phase
          lattice while decisions race the phase-keyed caches *)
  sp_faults : (fault_kind * int) list;  (** fault instances per class *)
}

val default : spec
(** plane lane, non-golden, seed 1, 2 workers, 64 steps, 3 reloads,
    wseed 42, 4 KiB x 8 segments, no faults. *)

val spec_to_string : spec -> string
(** Canonical one-line form, e.g.
    [lane=plane,golden=0,seed=1,...,faults=crash:1;wrap:1]. *)

val spec_of_string : string -> (spec, string) result
(** Parse fields over {!default}; unknown fields error. *)

val has_fault : fault_kind -> spec -> bool

(** {1 Actions}

    The scheduler's event alphabet.  A seeded run records the script it
    executed; a scripted run executes the script verbatim, silently
    skipping actions that are not executable at their position (dead
    worker, exhausted budget, ...) — skipped actions are not recorded,
    so the recorded script of any run replays identically. *)

type action =
  | Decide of int      (** worker [w] serves its next request *)
  | Reload             (** mutate live policy, bump, publish *)
  | Reload_dropped     (** F_drop: mutate + bump, no publish *)
  | Reload_delayed     (** F_delay: mutate + bump, publish at [Flush] *)
  | Flush              (** publish a delayed reload *)
  | Crash of int       (** F_crash: decide, leave torn claim, kill worker *)
  | Stale of int       (** F_stale: decide against the run-start snapshot *)
  | Dup of int         (** F_dup: re-journal the worker's last decision *)
  | Flood              (** F_wrap: kaudit-flood the journal to overrun *)
  | Opt                (** next recompile action (optimize/edit/deopt) *)
  | Probe              (** golden opt lane: one nf probe battery *)
  | Phase_step of int
      (** advance subject [s]'s lifecycle phase one step forward
          (plane lane, [sp_phases] specs only) *)

val action_to_string : action -> string
(** [d<w>], [r], [r-], [r+], [f], [c<w>], [s<w>], [u<w>], [w], [o],
    [p], [h<s>]. *)

val action_of_string : string -> (action, string) result

val script_to_string : action list -> string
(** Dot-joined tokens; the empty script renders as ["-"]. *)

val script_of_string : string -> (action list, string) result

(** {1 Events}

    The observable trace, over which {!Prop} properties are evaluated.
    Two runs of the same [(spec, mode)] produce identical traces. *)

type event =
  | E_decide of {
      d_worker : int;
      d_seq : int;        (** submission index into the request array *)
      d_hook : int;       (** {!Plane.hook_index} *)
      d_verdict : int;    (** 0 deny / 1 allow / 2 reject *)
      d_errno : int;      (** 0 for none *)
      d_epoch : int;      (** snapshot epoch that served the decision *)
      d_phase : int;      (** lifecycle phase index the decision was
                              served under (0 before any step) *)
      d_live_ok : bool;   (** verdict agreed with the live-state oracle *)
      d_journaled : bool; (** committed to the worker's journal term *)
      d_stale : bool;     (** served via F_stale injection *)
      d_torn : bool;      (** F_crash left this record torn *)
    }
  | E_phase of { h_subject : int; h_from : int; h_to : int }
      (** a subject's lifecycle phase advanced (indices) *)
  | E_mutate of { m_label : string }   (** live policy mutated + bumped *)
  | E_publish of { p_epoch : int }     (** snapshot published *)
  | E_crash of { c_worker : int }
  | E_dup of { u_worker : int; u_seq : int }
  | E_flood of { f_bytes : int; f_overrun : bool }
  | E_overrun of { o_worker : int }    (** journal writer overrun; -1 = flood *)
  | E_opt of {
      t_label : string;           (** O1/E2/O3, optimize, deoptimize *)
      t_installed : string list;  (** hooks whose rewrite was installed *)
      t_stale : bool;   (** a previously installed rewrite was stale *)
      t_proved : bool;  (** every install had a matching proof log line *)
    }
  | E_nf of { n_port : int; n_ok : bool }   (** probe vs Netfilter.walk *)
  | E_pd of { pd_seq : int; pd_ok : bool }  (** dispatcher vs live oracle *)

val event_to_string : event -> string

type ctx = {
  x_spec : spec;
  x_script : action list;  (** the actions actually executed, in order *)
  x_trace : event array;
  x_plane : Plane.t option;  (** plane lane only *)
  x_run : int;               (** journal run stamp of this simulation *)
  x_requests : Plane.request array;
  x_journal : J.decision list;  (** this run's journaled decisions *)
  x_dropped : int;              (** journal records lost to wraparound *)
}

val trace_to_string : ctx -> string
(** One {!event_to_string} line per event — the bit-replayability
    witness: equal strings iff equal traces. *)

type mode = Seeded | Scripted of action list

val run : spec -> mode -> ctx
(** Execute one simulation.  Raises [Invalid_argument] if the journal
    geometry cannot host every worker term (plus the flood term under
    [F_wrap]). *)

(** {1 Golden fixtures}

    The 20 hand-fixed merge orders of the legacy interleaving harness,
    pinned as named scripts ([("P1DP2DP3D", [...]), ...] and the
    optimizer-gate ([O1]/[E2]/[O3]) counterpart).  Run them with
    [{default with sp_golden = true}] / [{... sp_lane = Lane_opt}]. *)

val interleavings : 'a list -> 'a list -> 'a list list
(** All merge orders preserving the relative order within each list. *)

val golden_plane_scripts : (string * action list) list
val golden_opt_scripts : (string * action list) list

val golden_plane_setup : PS.t -> unit
(** Install the golden initial policy (cdrom mountable bare, port 777
    tcp to exim) — exported so parity tests can mirror the fixture on a
    scratch state. *)

val golden_plane_flip : int -> PS.t -> string
(** Apply golden reload [k] (0..2) and return its label (P1/P2/P3). *)

val golden_battery : unit -> Plane.request array
(** One 8-probe battery: mount bare x2, mount full-flags x2, bind tcp
    x2, bind udp x2 — interned values, asked twice each. *)
