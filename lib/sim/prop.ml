(* LTL-ish temporal properties over a simulation trace.  Each property
   names the spec shapes it applies to (so sweeps only check invariants
   the injected faults do not legitimately break) and evaluates post-hoc
   over the stitched event/journal trace. *)

module Plane = Protego_plane.Plane
module Snapshot = Protego_plane.Snapshot
module Replay = Protego_plane.Replay
module Errno = Protego_base.Errno
module J = Protego_journal.Journal

type outcome = Holds | Violated of { at : int; why : string }

type t = {
  p_name : string;
  p_applies : Sim.spec -> bool;
  p_eval : Sim.ctx -> outcome;
}

let outcome_to_string = function
  | Holds -> "holds"
  | Violated { at; why } -> Printf.sprintf "VIOLATED at event %d: %s" at why

(* --- combinators -------------------------------------------------------- *)

let always name ~applies pred ~why =
  { p_name = name; p_applies = applies;
    p_eval =
      (fun ctx ->
        let out = ref Holds in
        (try
           Array.iteri
             (fun i e ->
               if not (pred ctx e) then begin
                 out := Violated { at = i; why = why ctx e };
                 raise Exit
               end)
             ctx.Sim.x_trace
         with Exit -> ());
        !out) }

let always_fold name ~applies ~init ~step =
  { p_name = name; p_applies = applies;
    p_eval =
      (fun ctx ->
        let st = ref init in
        let out = ref Holds in
        (try
           Array.iteri
             (fun i e ->
               match step ctx !st e with
               | Ok st' -> st := st'
               | Error why ->
                   out := Violated { at = i; why };
                   raise Exit)
             ctx.Sim.x_trace
         with Exit -> ());
        !out) }

let leads_to name ~applies ~trigger ~ack ~why =
  { p_name = name; p_applies = applies;
    p_eval =
      (fun ctx ->
        let pending = ref None in
        Array.iteri
          (fun i e ->
            if trigger e then (if !pending = None then pending := Some i)
            else if ack e then pending := None)
          ctx.Sim.x_trace;
        match !pending with
        | None -> Holds
        | Some at -> Violated { at; why }) }

(* --- applicability helpers ---------------------------------------------- *)

let plane_lane sp = sp.Sim.sp_lane = Sim.Lane_plane
let opt_lane sp = sp.Sim.sp_lane = Sim.Lane_opt
let without fs sp = List.for_all (fun f -> not (Sim.has_fault f sp)) fs

(* --- plane-lane properties ---------------------------------------------- *)

(* always (decision.epoch >= last published epoch): a worker may never
   serve a decision against an epoch older than the last acked
   publication. *)
let epoch_monotone =
  always_fold "epoch-monotone"
    ~applies:(fun sp -> plane_lane sp && without [ Sim.F_stale ] sp)
    ~init:0
    ~step:(fun _ last e ->
      match e with
      | Sim.E_publish p -> Ok p.p_epoch
      | Sim.E_decide d ->
          if d.d_epoch >= last then Ok last
          else
            Error
              (Printf.sprintf
                 "decide w%d seq %d served epoch %d after publish of epoch %d"
                 d.d_worker d.d_seq d.d_epoch last)
      | _ -> Ok last)

(* always (verdict = snapshot_at(epoch) oracle verdict): whatever
   snapshot a decision stamps, its verdict and errno must reproduce
   against that snapshot's reference oracle. *)
let verdict_matches_epoch =
  always "verdict-matches-epoch" ~applies:plane_lane
    (fun ctx e ->
      match e with
      | Sim.E_decide d -> (
          match ctx.Sim.x_plane with
          | None -> true
          | Some plane -> (
              match Plane.snapshot_at plane d.d_epoch with
              | None -> false
              | Some snap ->
                  let req = ctx.Sim.x_requests.(d.d_seq) in
                  let expect =
                    Plane.snapshot_oracle
                      ~phase:(Protego_base.Phase.of_index d.d_phase) snap req
                  in
                  let allowed = d.d_verdict = 1 in
                  let errno_ok =
                    if allowed then d.d_errno = 0
                    else
                      d.d_errno = Errno.to_code (Plane.request_deny_errno req)
                  in
                  allowed = expect && errno_ok))
      | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_decide d ->
          Printf.sprintf
            "decide w%d seq %d verdict %d errno %d disagrees with the epoch %d \
             snapshot oracle"
            d.d_worker d.d_seq d.d_verdict d.d_errno d.d_epoch
      | _ -> "")

(* always (verdict = live oracle): only meaningful when every mutation
   is published before the next decision can observe it. *)
let live_oracle =
  always "live-oracle"
    ~applies:(fun sp ->
      plane_lane sp && without [ Sim.F_stale; Sim.F_drop; Sim.F_delay ] sp)
    (fun _ e ->
      match e with Sim.E_decide d -> d.d_live_ok | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_decide d ->
          Printf.sprintf "decide w%d seq %d diverged from the live oracle"
            d.d_worker d.d_seq
      | _ -> "")

(* eventually (reload acked): every mutation is followed by a publish —
   no reload starves, even under a deny flood. *)
let reload_acked =
  leads_to "reload-acked"
    ~applies:(fun sp ->
      plane_lane sp && sp.Sim.sp_reloads > 0
      && without [ Sim.F_drop; Sim.F_delay ] sp)
    ~trigger:(function Sim.E_mutate _ -> true | _ -> false)
    ~ack:(function Sim.E_publish _ -> true | _ -> false)
    ~why:"a policy mutation was never acked by a publish"

(* No decision may land between a mutation and its publish: with prompt
   publication the pair is atomic in the trace; a delayed or dropped
   publish opens the window this property closes. *)
let no_decide_under_pending_mutate =
  always_fold "no-decide-under-pending-mutate"
    ~applies:(fun sp ->
      plane_lane sp && without [ Sim.F_drop; Sim.F_delay ] sp)
    ~init:0
    ~step:(fun _ pending e ->
      match e with
      | Sim.E_mutate _ -> Ok (pending + 1)
      | Sim.E_publish _ -> Ok 0
      | Sim.E_decide d ->
          if pending = 0 then Ok 0
          else
            Error
              (Printf.sprintf
                 "decide w%d seq %d served under %d unpublished mutation(s)"
                 d.d_worker d.d_seq pending)
      | _ -> Ok pending)

(* The journal is a faithful record: every journaled decision appears
   exactly once with the exact verdict/errno/epoch/domain, nothing is
   duplicated, nothing appears that was never decided, and each term's
   records stay in append order. *)
let journal_faithful =
  { p_name = "journal-faithful";
    p_applies = (fun sp -> plane_lane sp && without [ Sim.F_dup ] sp);
    p_eval =
      (fun ctx ->
        let jds = ctx.Sim.x_journal in
        let by_seq = Hashtbl.create 64 in
        let dup = ref None in
        List.iter
          (fun (d : J.decision) ->
            if Hashtbl.mem by_seq d.J.d_seq && !dup = None then
              dup := Some d.J.d_seq
            else Hashtbl.replace by_seq d.J.d_seq d)
          jds;
        match !dup with
        | Some seq ->
            Violated
              { at = 0;
                why = Printf.sprintf "journal holds seq %d twice" seq }
        | None -> (
            (* per-domain append order *)
            let last_per_domain = Hashtbl.create 8 in
            let disorder = ref None in
            List.iter
              (fun (d : J.decision) ->
                (match Hashtbl.find_opt last_per_domain d.J.d_domain with
                | Some prev when prev >= d.J.d_seq && !disorder = None ->
                    disorder := Some (d.J.d_domain, prev, d.J.d_seq)
                | _ -> ());
                Hashtbl.replace last_per_domain d.J.d_domain d.J.d_seq)
              jds;
            match !disorder with
            | Some (dom, prev, seq) ->
                Violated
                  { at = 0;
                    why =
                      Printf.sprintf
                        "domain %d records reordered: seq %d after %d" dom seq
                        prev }
            | None ->
                let journaled_seqs = Hashtbl.create 64 in
                let out = ref Holds in
                (try
                   Array.iteri
                     (fun i e ->
                       match e with
                       | Sim.E_decide d when d.d_journaled && not d.d_torn -> (
                           Hashtbl.replace journaled_seqs d.d_seq ();
                           match Hashtbl.find_opt by_seq d.d_seq with
                           | None ->
                               if ctx.Sim.x_dropped = 0 then begin
                                 out :=
                                   Violated
                                     { at = i;
                                       why =
                                         Printf.sprintf
                                           "journaled decision seq %d missing \
                                            from the journal"
                                           d.d_seq };
                                 raise Exit
                               end
                           | Some jd ->
                               if
                                 jd.J.d_verdict <> d.d_verdict
                                 || jd.J.d_errno <> d.d_errno
                                 || jd.J.d_epoch <> d.d_epoch
                                 || jd.J.d_domain <> d.d_worker
                               then begin
                                 out :=
                                   Violated
                                     { at = i;
                                       why =
                                         Printf.sprintf
                                           "journal record seq %d disagrees \
                                            with the decision event"
                                           d.d_seq };
                                 raise Exit
                               end)
                       | _ -> ())
                     ctx.Sim.x_trace
                 with Exit -> ());
                (match !out with
                | Violated _ -> ()
                | Holds ->
                    List.iter
                      (fun (d : J.decision) ->
                        if
                          (not (Hashtbl.mem journaled_seqs d.J.d_seq))
                          && !out = Holds
                        then
                          out :=
                            Violated
                              { at = 0;
                                why =
                                  Printf.sprintf
                                    "journal holds phantom seq %d (never \
                                     decided)"
                                    d.J.d_seq })
                      jds);
                !out)) }

(* Total-order replay: every surviving journal record re-evaluates
   cleanly against the snapshot its epoch stamp names.  Holds under
   every fault class — torn records are suppressed, dropped records are
   absent, stale decisions stamped the epoch they actually used. *)
let replay_clean =
  { p_name = "replay-clean";
    p_applies = plane_lane;
    p_eval =
      (fun ctx ->
        match ctx.Sim.x_plane with
        | None -> Holds
        | Some plane -> (
            let rep =
              Replay.replay ~snapshot_of_epoch:(Plane.snapshot_at plane)
                (Array.of_list ctx.Sim.x_journal)
            in
            match (rep.Replay.rp_mismatches, rep.Replay.rp_missing_epochs) with
            | m :: _, _ ->
                Violated
                  { at = 0;
                    why =
                      Printf.sprintf "replay mismatch at seq %d (%s)"
                        m.Replay.mm_seq m.Replay.mm_field }
            | [], e :: _ ->
                Violated
                  { at = 0;
                    why =
                      Printf.sprintf "replay lost epoch %d from the history" e }
            | [], [] -> Holds)) }

(* always (phase steps move strictly forward): the tighten-only lattice
   admits no loosening — each E_phase advances its subject exactly from
   the phase the previous step left it in. *)
let phase_monotone =
  always_fold "phase-monotone" ~applies:plane_lane ~init:[]
    ~step:(fun _ phases e ->
      match e with
      | Sim.E_phase h ->
          let cur =
            match List.assoc_opt h.h_subject phases with
            | Some p -> p
            | None -> 0
          in
          if h.h_from = cur && h.h_to > h.h_from then
            Ok ((h.h_subject, h.h_to) :: List.remove_assoc h.h_subject phases)
          else
            Error
              (Printf.sprintf
                 "subject %d stepped %d -> %d while in phase %d: transitions \
                  must be monotone"
                 h.h_subject h.h_from h.h_to cur)
      | _ -> Ok phases)

(* always (decision served at the subject's current phase): combined
   with phase-monotone, no decision is ever served under a phase that
   is later loosened — the phase a verdict stamps can only tighten
   afterwards, never revert. *)
let phase_consistent =
  always_fold "phase-consistent" ~applies:plane_lane ~init:[]
    ~step:(fun ctx phases e ->
      match e with
      | Sim.E_phase h ->
          Ok ((h.h_subject, h.h_to) :: List.remove_assoc h.h_subject phases)
      | Sim.E_decide d ->
          let subject = Plane.subject_of ctx.Sim.x_requests.(d.d_seq) in
          let cur =
            match List.assoc_opt subject phases with Some p -> p | None -> 0
          in
          if d.d_phase = cur then Ok phases
          else
            Error
              (Printf.sprintf
                 "decide w%d seq %d served subject %d under phase %d but the \
                  subject is in phase %d"
                 d.d_worker d.d_seq subject d.d_phase cur)
      | _ -> Ok phases)

(* No record is ever torn — except by an injected crash. *)
let no_torn =
  always "no-torn"
    ~applies:(fun sp -> plane_lane sp && without [ Sim.F_crash ] sp)
    (fun _ e -> match e with Sim.E_decide d -> not d.d_torn | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_decide d ->
          Printf.sprintf "decide w%d seq %d left a torn record" d.d_worker
            d.d_seq
      | _ -> "")

(* Every decision reaches the journal — except when a crash kills the
   worker mid-record or a wraparound flood overruns the writer. *)
let all_journaled =
  always "all-journaled"
    ~applies:(fun sp ->
      plane_lane sp && without [ Sim.F_crash; Sim.F_wrap ] sp)
    (fun _ e -> match e with Sim.E_decide d -> d.d_journaled | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_decide d ->
          Printf.sprintf "decide w%d seq %d was never journaled" d.d_worker
            d.d_seq
      | _ -> "")

(* The journal writer never overruns a lagging term. *)
let no_overrun =
  always "no-overrun"
    ~applies:(fun sp -> without [ Sim.F_wrap ] sp)
    (fun _ e ->
      match e with
      | Sim.E_overrun _ -> false
      | Sim.E_flood f -> not f.f_overrun
      | _ -> true)
    ~why:(fun _ _ -> "journal writer overran a lagging term")

(* --- opt-lane properties ------------------------------------------------ *)

let nf_oracle =
  always "nf-oracle" ~applies:opt_lane
    (fun _ e -> match e with Sim.E_nf n -> n.n_ok | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_nf n ->
          Printf.sprintf "nf decision for port %d diverged from Netfilter.walk"
            n.n_port
      | _ -> "")

let pd_oracle =
  always "pd-oracle" ~applies:opt_lane
    (fun _ e -> match e with Sim.E_pd p -> p.pd_ok | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_pd p ->
          Printf.sprintf "dispatcher verdict for request %d diverged from the \
                          live oracle"
            p.pd_seq
      | _ -> "")

(* always (opt install => prior Equal proof): every installed rewrite
   carried a matching install line from the proof-gated log. *)
let opt_proof_gated =
  always "opt-proof-gated" ~applies:opt_lane
    (fun _ e -> match e with Sim.E_opt o -> o.t_proved | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_opt o ->
          Printf.sprintf "opt %s installed a rewrite without a proof log line"
            o.t_label
      | _ -> "")

(* An installed rewrite is never found stale.  A chain edit between
   optimizes legitimately demotes the install, so this is opt-in: it
   never applies in sweeps and exists to be selected explicitly as the
   recompile-install-race catch property. *)
let opt_never_stale =
  always "opt-never-stale"
    ~applies:(fun _ -> false)
    (fun _ e -> match e with Sim.E_opt o -> not o.t_stale | _ -> true)
    ~why:(fun _ e ->
      match e with
      | Sim.E_opt o ->
          Printf.sprintf "opt %s found a previously installed rewrite stale"
            o.t_label
      | _ -> "")

(* --- the registry ------------------------------------------------------- *)

let all =
  [ epoch_monotone; verdict_matches_epoch; live_oracle; reload_acked;
    no_decide_under_pending_mutate; phase_monotone; phase_consistent;
    journal_faithful; replay_clean; no_torn; all_journaled; no_overrun;
    nf_oracle; pd_oracle; opt_proof_gated; opt_never_stale ]

let applicable sp = List.filter (fun p -> p.p_applies sp) all

let find name =
  match List.find_opt (fun p -> p.p_name = name) all with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "sim: unknown property %s (know: %s)" name
           (String.concat ", " (List.map (fun p -> p.p_name) all)))

let check ctx props = List.map (fun p -> (p, p.p_eval ctx)) props
