(* Greedy delta-debugging over recorded action scripts: remove windows
   of actions while the selected property still fails, down to a
   1-action granularity fixpoint.  Scripted replays silently skip
   actions made inexecutable by earlier removals, so every candidate is
   a valid schedule — no repair pass needed. *)

let still_fails spec prop script =
  let ctx = Sim.run spec (Sim.Scripted script) in
  match prop.Prop.p_eval ctx with
  | Prop.Violated _ -> true
  | Prop.Holds -> false

let without l i n = List.filteri (fun j _ -> j < i || j >= i + n) l

let minimize spec prop script =
  if not (still_fails spec prop script) then script
  else begin
    let cur = ref script in
    let progress = ref true in
    while !progress do
      progress := false;
      let n = ref (max 1 (List.length !cur / 2)) in
      while !n >= 1 do
        let i = ref 0 in
        while !i + !n <= List.length !cur do
          let cand = without !cur !i !n in
          if still_fails spec prop cand then begin
            cur := cand;
            progress := true
          end
          else incr i
        done;
        n := !n / 2
      done
    done;
    !cur
  end

let replay_command spec prop script =
  Printf.sprintf "protego-sim replay --spec '%s' --script '%s' --prop %s"
    (Sim.spec_to_string spec)
    (Sim.script_to_string script)
    prop.Prop.p_name
