(** Schedule shrinking: when a property fails, minimize the recorded
    action script to a (locally) minimal schedule that still fails, and
    print it as a replayable one-liner.  Strategy: greedy ddmin —
    window sizes from half the script down to single actions, repeated
    to fixpoint.  Scripted replay skips inexecutable actions, so every
    candidate is well-formed by construction (DESIGN.md §10). *)

val still_fails : Sim.spec -> Prop.t -> Sim.action list -> bool
(** Replay the script and evaluate the property: [true] iff violated. *)

val minimize : Sim.spec -> Prop.t -> Sim.action list -> Sim.action list
(** A 1-minimal (no single window removable) failing sub-script of the
    input; the input itself if it does not fail. *)

val replay_command : Sim.spec -> Prop.t -> Sim.action list -> string
(** [protego-sim replay --spec '...' --script '...' --prop <name>]. *)
