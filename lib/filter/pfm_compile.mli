(** Compilers from the declarative Protego policy sources into verified
    {!Pfm} programs, plus the per-hook context (field-layout) contracts.

    Each compiler emits a program, runs the {!Pfm.verify} pass on it, and
    raises [Invalid_argument] if its own output does not verify — a
    compiler bug, never a policy error.  The compiled program is
    behaviourally identical to the reference list walk it replaces
    (first-match semantics, including the subtleties: the mount flags of
    the {e first} matching whitelist entry decide, a bind-map entry with
    the right port and protocol but wrong binary denies without trying
    later entries, and a netfilter rule with no matches terminates the
    chain).  Equality is enforced by the differential fuzz suite.

    Field layouts (the contract between [*_ctx] builders and compilers):

    - mount:   strs = [| source; target; fstype |],
               ints = [| phase; flags mask |]
    - umount:  strs = [| target |], ints = [| phase; mounting uid; ruid |]
    - bind:    strs = [| exe |],
               ints = [| phase; port; proto (6/17); caller uid |]
    - packet:  ints = [| proto code; src; dst; src port; dst port;
                         icmp code; syn flag; origin; owner uid |]
    - ppp:     strs = [| device |], ints = [| phase; option-is-safe flag |]

    Every task-scoped hook context leads with the calling task's
    lifecycle phase index ({!Protego_base.Phase.index}) in [ints.(0)];
    packets are not tasks, so the netfilter layout has no phase field.
    When no rule of a policy carries a phase guard the compilers emit no
    phase instructions at all — unphased policies compile to the same
    instruction stream as before the lifecycle dimension existed.  When
    at least one rule is guarded, the production compilers prefix a
    leading [iswitch] on the phase field whose cases are per-phase
    specializations of the ladder (out-of-range phase values deny); the
    linear compilers clamp the phase once and re-check each rule's guard
    inline, so the prover relates two structurally different derivations
    of the same per-phase semantics.

    Missing integer fields (no port, no icmp type, kernel-origin owner)
    are encoded as [min_int], which no whitelist immediate can equal. *)

module Ktypes = Protego_kernel.Ktypes
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Phase = Protego_base.Phase
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts

(** {1 Mount / umount whitelist} *)

(** A mirror of [Policy_state.mount_rule] (which lives above this library
    in the dependency order). *)
type mount_rule = {
  fm_source : string;
  fm_target : string;
  fm_fstype : string;
  fm_flags : Ktypes.mount_flag list;
  fm_user_only : bool;  (** [`User]: only the mounting user may unmount *)
  fm_phase : Phase.guard;  (** lifecycle window the rule is active in *)
}

val flags_mask : Ktypes.mount_flag list -> int
(** ro=1, nosuid=2, nodev=4, noexec=8. *)

val mount_rule_text : mount_rule -> string
(** ["allow <source> <target> <fstype>[ <guard>]"] — the form used in
    provenance notes and lint findings. *)

val mount : ?phase:Phase.t -> mount_rule list -> Pfm.program
(** Hash-dispatches on the source device, then checks target, fstype
    (honouring the ["auto"] wildcard on either side) and required flags of
    the first matching rule.  With [?phase], compiles the residual policy
    one phase sees — guards resolved statically, no dispatch emitted (the
    per-phase program the lint layer feeds to the abstract interpreter). *)

val mount_notes :
  ?phase:Phase.t -> mount_rule list -> Pfm.program * (int * string) list
(** Like {!mount} but also returns provenance notes: [(pc, rule text)]
    pairs marking where each declarative rule's code begins, for the
    static analyzer to attribute findings on compiled code back to rules.
    Every compiler has a [*_notes] sibling with the same contract. *)

val mount_ctx :
  phase:int -> source:string -> target:string -> fstype:string ->
  flags:Ktypes.mount_flag list -> Pfm.ctx

val umount : ?phase:Phase.t -> mount_rule list -> Pfm.program
(** Hash-dispatches on the mount target; [`Users] rules allow anyone,
    [`User] rules require the caller to be the mounting user. *)

val umount_notes :
  ?phase:Phase.t -> mount_rule list -> Pfm.program * (int * string) list

val umount_ctx :
  phase:int -> target:string -> mounted_by:int -> ruid:int -> Pfm.ctx

(** {1 Bind map} *)

val bind : ?phase:Phase.t -> Bindconf.entry list -> Pfm.program
(** Hash-dispatches on the port number; the matching entry's binary and
    owner must both agree or the bind is denied. *)

val bind_notes :
  ?phase:Phase.t -> Bindconf.entry list -> Pfm.program * (int * string) list

val bind_ctx :
  phase:int -> port:int -> proto:Bindconf.proto -> exe:string -> uid:int ->
  Pfm.ctx

(** {1 Netfilter chains} *)

val verdict_of_netfilter : Netfilter.verdict -> Pfm.verdict
val netfilter_of_verdict : Pfm.verdict -> Netfilter.verdict

val netfilter : rules:Netfilter.rule list -> policy:Netfilter.verdict -> Pfm.program
(** Straight-line first-match-wins translation of a chain; the chain
    policy becomes the final verdict.  Rules behind a match-anything rule
    (one whose every match is trivially true, e.g. only /0 prefixes) are
    dead in the reference walk and are not emitted. *)

val netfilter_notes :
  rules:Netfilter.rule list -> policy:Netfilter.verdict ->
  Pfm.program * (int * string) list

val packet_ctx : Packet.t -> origin:Packet.origin -> Pfm.ctx

(** {1 Safe-ioctl (pppd modem options) whitelist} *)

val ppp_ioctl : ?phase:Phase.t -> Pppopts.t -> Pfm.program
(** Allows a modem-configuration ioctl iff the device is whitelisted by an
    [allow-device] directive active in the task's phase and the requested
    option is intrinsically safe ({!Protego_net.Ppp.option_is_safe}). *)

val ppp_ioctl_notes :
  ?phase:Phase.t -> Pppopts.t -> Pfm.program * (int * string) list

val ppp_ctx : phase:int -> device:string -> opt:Protego_net.Ppp.option_ -> Pfm.ctx

(** {1 Reference (linear) compilers}

    Straight-line transliterations of each policy in declaration order
    with no hash dispatch or grouping — an independently-derived second
    program per source.  [protego-lint --prove] and the equivalence
    suites run [Pfm_equiv.prove] between each production program and
    its linear sibling: if the production compiler's dispatch structure
    ever drifts from first-match semantics, the prover produces a
    replayable counterexample instead of a silent divergence.
    [netfilter_linear] additionally reverses each rule's match
    conjunction (semantically free) so the two instruction streams are
    genuinely different. *)

val mount_linear : mount_rule list -> Pfm.program
val umount_linear : mount_rule list -> Pfm.program
val bind_linear : Bindconf.entry list -> Pfm.program
val netfilter_linear :
  rules:Netfilter.rule list -> policy:Netfilter.verdict -> Pfm.program
val ppp_linear : Pppopts.t -> Pfm.program
