(** Profile-guided recompilation of {!Pfm} programs.

    [optimize p] inspects the per-instruction counters [p] has retired
    and rebuilds hot structures:

    - {b eq-cascade → hashed switch}: a first-match cascade of ≥4
      equality tests on one field (the shape the netfilter compiler
      emits for per-port rules) becomes one [Iswitch]; rule bodies are
      kept, and their "continue scanning" edges collapse to the
      cascade's fall-out target, which is sound because the keys are
      distinct and context fields never change mid-evaluation.
    - {b CIDR-trie lowering}: a cascade of ≥4 disjoint prefix
      [Masked_eq] tests on one field is re-dispatched through a
      one-level radix on the top octet ([Masked_eq] with mask
      [0xff000000]), groups ordered by observed heat.  Only masked
      tests are emitted, so the equivalence prover's masked-literal
      domain proves the rewrite exactly.
    - {b hot-rule reordering}: shorter cascades of pairwise-disjoint
      tests are reordered hottest-first (first-match-safe because
      disjoint tests cannot both match).
    - {b switch re-bucketing}: when one case of an [Iswitch]/[Sswitch]
      absorbs more than half the traffic, a single equality test on
      the hot key is hoisted in front of the hash dispatch.

    The rewritten program is {e not} verified or proven here: the
    caller must gate installation on {!Pfm.verify} and
    [Pfm_equiv.prove] (see {!Pfm_dispatch}).  [optimize] itself never
    raises; structurally unsafe candidates (shared heads, jumps into
    rule interiors from outside, overlapping tests) are skipped. *)

type report = {
  applied : (string * string) list;  (** (pass name, detail) per rewrite *)
  before_insns : int;
  after_insns : int;
}

val optimize : Pfm.program -> (Pfm.program * report) option
(** [None] when no pass applies.  The result is named
    [p.pname ^ "+opt"] and starts with fresh counters. *)

val report_to_string : report -> string
