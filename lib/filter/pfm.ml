type verdict = Allow | Deny | Reject

type cond =
  | Eq of int
  | Ge of int
  | Le of int
  | In_range of int * int
  | All_bits of int
  | Masked_eq of { mask : int; value : int }
  | Eq_field of int
  | Str_eq of string
  | Str_prefix of string

type insn =
  | Ld_int of int
  | Ld_str of int
  | Jmp of int
  | Jif of cond * int * int
  | Iswitch of { tbl : (int, int) Hashtbl.t; default : int }
  | Sswitch of { tbl : (string, int) Hashtbl.t; default : int }
  | Ret of verdict

type ctx = { ints : int array; strs : string array }

type program = {
  pname : string;
  n_int_fields : int;
  n_str_fields : int;
  insns : insn array;
  counters : int array;
  mutable retired : int;
}

let max_insns = 65536

(* --- verifier ---------------------------------------------------------- *)

type verify_error =
  | Empty_program
  | Program_too_long of int
  | Backward_jump of int
  | Jump_out_of_range of int
  | Missing_verdict of int
  | Int_field_out_of_range of int * int
  | Str_field_out_of_range of int * int
  | Int_acc_unset of int
  | Str_acc_unset of int
  | Unreachable_insn of int

let verify_error_to_string = function
  | Empty_program -> "empty program"
  | Program_too_long n -> Printf.sprintf "program too long (%d instructions)" n
  | Backward_jump pc -> Printf.sprintf "backward jump at pc %d" pc
  | Jump_out_of_range pc -> Printf.sprintf "jump out of range at pc %d" pc
  | Missing_verdict pc ->
      Printf.sprintf "control can fall off the end at pc %d (missing verdict)" pc
  | Int_field_out_of_range (pc, f) ->
      Printf.sprintf "int field %d out of range at pc %d" f pc
  | Str_field_out_of_range (pc, f) ->
      Printf.sprintf "string field %d out of range at pc %d" f pc
  | Int_acc_unset pc ->
      Printf.sprintf "integer condition before any Ld_int at pc %d" pc
  | Str_acc_unset pc ->
      Printf.sprintf "string condition before any Ld_str at pc %d" pc
  | Unreachable_insn pc -> Printf.sprintf "unreachable instruction at pc %d" pc

let cond_is_int = function
  | Eq _ | Ge _ | Le _ | In_range _ | All_bits _ | Masked_eq _ | Eq_field _ ->
      true
  | Str_eq _ | Str_prefix _ -> false

(* Successor program counters of the instruction at [pc] (all relative
   offsets already added; Ret has none). *)
let successors pc insn =
  match insn with
  | Ld_int _ | Ld_str _ -> [ pc + 1 ]
  | Jmp d -> [ pc + 1 + d ]
  | Jif (_, jt, jf) -> [ pc + 1 + jt; pc + 1 + jf ]
  | Iswitch { tbl; default } ->
      (pc + 1 + default)
      :: Hashtbl.fold (fun _ d acc -> (pc + 1 + d) :: acc) tbl []
  | Sswitch { tbl; default } ->
      (pc + 1 + default)
      :: Hashtbl.fold (fun _ d acc -> (pc + 1 + d) :: acc) tbl []
  | Ret _ -> []

let jump_offsets = function
  | Jmp d -> [ d ]
  | Jif (_, jt, jf) -> [ jt; jf ]
  | Iswitch { tbl; default } ->
      default :: Hashtbl.fold (fun _ d acc -> d :: acc) tbl []
  | Sswitch { tbl; default } ->
      default :: Hashtbl.fold (fun _ d acc -> d :: acc) tbl []
  | Ld_int _ | Ld_str _ | Ret _ -> []

(* The verifier runs two passes and collects *every* error it finds (the
   lint CLI wants complete diagnostics, not just the first problem):

   Pass 1 (locals) checks, at every slot, operand validity that does not
   depend on control flow: jump direction and range, field indices.

   Pass 2 (flow) is a forward dataflow over the same slots.  Jumps are
   forward-only, so visiting program counters in order is a topological
   order; a slot's predecessors have all been processed when it is reached.
   It tracks, per slot, whether the slot is reachable and whether each
   accumulator is definitely initialized on every path into it.  Both
   passes run regardless of the other's outcome: pass 2 simply refuses to
   propagate through invalid edges (backward or out of range), so a slot
   that is only reachable through an ill-targeted jump is reported both as
   the jump error (pass 1, at the jump) and as unreachable (pass 2, at the
   slot).  Errors within a pass come out in pc order; accumulator errors
   are only reported for reachable slots (an unreachable slot gets
   [Unreachable_insn] instead). *)
let verify_all p =
  let n = Array.length p.insns in
  if n = 0 then Error [ Empty_program ]
  else if n > max_insns then Error [ Program_too_long n ]
  else begin
    let errs = ref [] in
    let err e = errs := e :: !errs in
    (* Pass 1: local validity of operands at every slot. *)
    for pc = 0 to n - 1 do
      let insn = p.insns.(pc) in
      if List.exists (fun d -> d < 0) (jump_offsets insn) then
        err (Backward_jump pc)
      else if List.exists (fun s -> s >= n) (successors pc insn) then
        if
          (* A load whose fall-through is the end of the program is a
             missing verdict, not a bad jump. *)
          match insn with Ld_int _ | Ld_str _ -> true | _ -> false
        then err (Missing_verdict pc)
        else err (Jump_out_of_range pc);
      (match insn with
      | Ld_int f when f < 0 || f >= p.n_int_fields ->
          err (Int_field_out_of_range (pc, f))
      | Ld_str f when f < 0 || f >= p.n_str_fields ->
          err (Str_field_out_of_range (pc, f))
      | Jif (Eq_field f, _, _) when f < 0 || f >= p.n_int_fields ->
          err (Int_field_out_of_range (pc, f))
      | _ -> ())
    done;
    (* Pass 2: forward dataflow. *)
    let reach = Array.make n false in
    let int_ok = Array.make n false in
    let str_ok = Array.make n false in
    reach.(0) <- true;
    let merge ~from pc (i, s) =
      (* Propagate only along valid forward in-range edges; invalid edges
         were already reported by pass 1. *)
      if pc > from && pc < n then
        if reach.(pc) then begin
          int_ok.(pc) <- int_ok.(pc) && i;
          str_ok.(pc) <- str_ok.(pc) && s
        end
        else begin
          reach.(pc) <- true;
          int_ok.(pc) <- i;
          str_ok.(pc) <- s
        end
    in
    for pc = 0 to n - 1 do
      if not reach.(pc) then err (Unreachable_insn pc)
      else begin
        let insn = p.insns.(pc) in
        (match insn with
        | Jif (c, _, _) when cond_is_int c && not int_ok.(pc) ->
            err (Int_acc_unset pc)
        | Jif (c, _, _) when (not (cond_is_int c)) && not str_ok.(pc) ->
            err (Str_acc_unset pc)
        | Iswitch _ when not int_ok.(pc) -> err (Int_acc_unset pc)
        | Sswitch _ when not str_ok.(pc) -> err (Str_acc_unset pc)
        | _ -> ());
        let out =
          match insn with
          | Ld_int _ -> (true, str_ok.(pc))
          | Ld_str _ -> (int_ok.(pc), true)
          | _ -> (int_ok.(pc), str_ok.(pc))
        in
        List.iter (fun s -> merge ~from:pc s out) (successors pc insn)
      end
    done;
    match List.rev !errs with [] -> Ok () | es -> Error es
  end

let verify p =
  match verify_all p with
  | Ok () -> Ok ()
  | Error [] -> Ok ()
  | Error (e :: _) -> Error e

(* --- evaluation -------------------------------------------------------- *)

(* Allocation-free prefix test (the shadow-file rule runs it on every
   open). *)
let has_prefix ~prefix s =
  let plen = String.length prefix in
  String.length s >= plen
  &&
  let rec go i = i >= plen || (s.[i] = prefix.[i] && go (i + 1)) in
  go 0

let eval_cond c acc_i acc_s (ctx : ctx) =
  match c with
  | Eq imm -> acc_i = imm
  | Ge imm -> acc_i >= imm
  | Le imm -> acc_i <= imm
  | In_range (lo, hi) -> acc_i >= lo && acc_i <= hi
  | All_bits imm -> acc_i land imm = imm
  | Masked_eq { mask; value } -> acc_i land mask = value
  | Eq_field f -> acc_i = ctx.ints.(f)
  | Str_eq imm -> String.equal acc_s imm
  | Str_prefix prefix -> has_prefix ~prefix acc_s

let eval p ctx =
  if
    Array.length ctx.ints < p.n_int_fields
    || Array.length ctx.strs < p.n_str_fields
  then
    invalid_arg
      (Printf.sprintf "Pfm.eval: context too narrow for program %s" p.pname);
  let counters = p.counters and insns = p.insns in
  let rec step pc acc_i acc_s steps =
    counters.(pc) <- counters.(pc) + 1;
    match insns.(pc) with
    | Ld_int f -> step (pc + 1) ctx.ints.(f) acc_s (steps + 1)
    | Ld_str f -> step (pc + 1) acc_i ctx.strs.(f) (steps + 1)
    | Jmp d -> step (pc + 1 + d) acc_i acc_s (steps + 1)
    | Jif (c, jt, jf) ->
        let d = if eval_cond c acc_i acc_s ctx then jt else jf in
        step (pc + 1 + d) acc_i acc_s (steps + 1)
    | Iswitch { tbl; default } ->
        let d =
          match Hashtbl.find_opt tbl acc_i with Some d -> d | None -> default
        in
        step (pc + 1 + d) acc_i acc_s (steps + 1)
    | Sswitch { tbl; default } ->
        let d =
          match Hashtbl.find_opt tbl acc_s with Some d -> d | None -> default
        in
        step (pc + 1 + d) acc_i acc_s (steps + 1)
    | Ret v ->
        p.retired <- p.retired + steps + 1;
        v
  in
  step 0 0 "" 0

let insn_count p = Array.fold_left ( + ) 0 p.counters

let reset_counters p =
  Array.fill p.counters 0 (Array.length p.counters) 0;
  p.retired <- 0

(* --- disassembly ------------------------------------------------------- *)

let verdict_to_string = function
  | Allow -> "allow"
  | Deny -> "deny"
  | Reject -> "reject"

let cond_to_string = function
  | Eq imm -> Printf.sprintf "eq %d" imm
  | Ge imm -> Printf.sprintf "ge %d" imm
  | Le imm -> Printf.sprintf "le %d" imm
  | In_range (lo, hi) -> Printf.sprintf "in [%d,%d]" lo hi
  | All_bits imm -> Printf.sprintf "allbits 0x%x" imm
  | Masked_eq { mask; value } -> Printf.sprintf "masked 0x%x=0x%x" mask value
  | Eq_field f -> Printf.sprintf "eq i%d" f
  | Str_eq s -> Printf.sprintf "streq %S" s
  | Str_prefix s -> Printf.sprintf "strpfx %S" s

let switch_entries_to_string to_s tbl default =
  let entries =
    Hashtbl.fold (fun k d acc -> (to_s k, d) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun (k, d) -> Printf.sprintf "%s=>+%d" k d)
  in
  String.concat " " (entries @ [ Printf.sprintf "_=>+%d" default ])

let insn_to_string = function
  | Ld_int f -> Printf.sprintf "ldi i%d" f
  | Ld_str f -> Printf.sprintf "lds s%d" f
  | Jmp d -> Printf.sprintf "jmp +%d" d
  | Jif (c, jt, jf) -> Printf.sprintf "jif (%s) +%d +%d" (cond_to_string c) jt jf
  | Iswitch { tbl; default } ->
      "iswitch " ^ switch_entries_to_string string_of_int tbl default
  | Sswitch { tbl; default } ->
      "sswitch "
      ^ switch_entries_to_string (fun s -> Printf.sprintf "%S" s) tbl default
  | Ret v -> "ret " ^ verdict_to_string v

let pp_insn ppf i = Format.pp_print_string ppf (insn_to_string i)

let disassemble p =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "; %s (%d insns, %d int fields, %d str fields)\n" p.pname
       (Array.length p.insns) p.n_int_fields p.n_str_fields);
  Array.iteri
    (fun pc insn ->
      Buffer.add_string b
        (Printf.sprintf "%4d: %-40s ; hits=%d\n" pc (insn_to_string insn)
           p.counters.(pc)))
    p.insns;
  Buffer.contents b

(* --- assembler --------------------------------------------------------- *)

module Asm = struct
  type label = int

  type aitem =
    | A_insn of insn                      (* no label operands *)
    | A_jmp of label
    | A_jif of cond * label * label
    | A_iswitch of (int * label) list * label
    | A_sswitch of (string * label) list * label
    | A_label of label
    | A_note of string                    (* provenance marker, occupies no space *)

  type t = {
    mutable items : aitem list;           (* reversed *)
    mutable next_label : int;
    placed : (label, unit) Hashtbl.t;
    mutable resolved_notes : (int * string) list;  (* set by [assemble] *)
  }

  let create () =
    { items = []; next_label = 0; placed = Hashtbl.create 16;
      resolved_notes = [] }

  let fresh_label t =
    let l = t.next_label in
    t.next_label <- l + 1;
    l

  let push t item = t.items <- item :: t.items

  let place t l =
    if Hashtbl.mem t.placed l then
      invalid_arg (Printf.sprintf "Pfm.Asm.place: label %d placed twice" l);
    Hashtbl.replace t.placed l ();
    push t (A_label l)

  let note t s = push t (A_note s)
  let notes t = t.resolved_notes
  let ld_int t f = push t (A_insn (Ld_int f))
  let ld_str t f = push t (A_insn (Ld_str f))
  let jmp t l = push t (A_jmp l)
  let jif t c ~jt ~jf = push t (A_jif (c, jt, jf))
  let iswitch t cases ~default = push t (A_iswitch (cases, default))
  let sswitch t cases ~default = push t (A_sswitch (cases, default))
  let ret t v = push t (A_insn (Ret v))

  let assemble t ~name ~n_int_fields ~n_str_fields =
    let items = List.rev t.items in
    (* Address assignment: labels and notes occupy no space. *)
    let addr = Hashtbl.create 16 in
    let notes = ref [] in
    let n =
      List.fold_left
        (fun pc item ->
          match item with
          | A_label l ->
              Hashtbl.replace addr l pc;
              pc
          | A_note s ->
              notes := (pc, s) :: !notes;
              pc
          | A_insn _ | A_jmp _ | A_jif _ | A_iswitch _ | A_sswitch _ -> pc + 1)
        0 items
    in
    t.resolved_notes <- List.rev !notes;
    let resolve pc l =
      match Hashtbl.find_opt addr l with
      | Some a -> a - (pc + 1)
      | None ->
          invalid_arg (Printf.sprintf "Pfm.Asm.assemble: unplaced label %d" l)
    in
    let insns = Array.make n (Ret Deny) in
    let pc = ref 0 in
    List.iter
      (fun item ->
        let emit i =
          insns.(!pc) <- i;
          incr pc
        in
        match item with
        | A_label _ | A_note _ -> ()
        | A_insn i -> emit i
        | A_jmp l -> emit (Jmp (resolve !pc l))
        | A_jif (c, jt, jf) -> emit (Jif (c, resolve !pc jt, resolve !pc jf))
        | A_iswitch (cases, default) ->
            let tbl = Hashtbl.create (List.length cases * 2) in
            List.iter (fun (k, l) -> Hashtbl.replace tbl k (resolve !pc l)) cases;
            emit (Iswitch { tbl; default = resolve !pc default })
        | A_sswitch (cases, default) ->
            let tbl = Hashtbl.create (List.length cases * 2) in
            List.iter (fun (k, l) -> Hashtbl.replace tbl k (resolve !pc l)) cases;
            emit (Sswitch { tbl; default = resolve !pc default }))
      items;
    { pname = name; n_int_fields; n_str_fields; insns;
      counters = Array.make n 0; retired = 0 }
end
