(* Profile-guided recompilation.

   Every pass here works on a decoded form of the program in which
   jump targets are absolute ids: original pcs (>= 0) for surviving
   instructions, synthetic ids (< 0) for positions the passes invent.
   Re-encoding binds one assembler label per referenced id, so a pass
   only has to say *which* original instruction a jump should reach,
   never at what offset it will land.

   The structural unit is the cascade "element":

       h:   Ld_int f
       h+1: Jif (selector, jt, jf)        jf -> next element head
       ...  interior (the rule body jt enters)

   A run of same-field elements chained through their jf edges is a
   compiled first-match cascade.  A pass may rewrite a run only when
   the run is *closed*: element interiors and every head but the first
   are entered from inside the run alone.  Closure makes "continue
   scanning" edges meaningful: inside element j the selector has
   matched, so under pairwise-disjoint selectors no later element can
   match and the edge may be collapsed to the cascade's fall-out.

   Nothing here is trusted: the caller must gate every rewritten
   program on Pfm.verify and Pfm_equiv.prove before installing it
   (Pfm_dispatch does), so the passes only need to be right about
   profitability, not soundness. *)

type report = {
  applied : (string * string) list;
  before_insns : int;
  after_insns : int;
}

let report_to_string r =
  Printf.sprintf "%d -> %d insns; %s" r.before_insns r.after_insns
    (String.concat ", "
       (List.map (fun (p, d) -> p ^ " (" ^ d ^ ")") r.applied))

(* ------------------------------------------------------------------ *)
(* Decoded instructions with absolute targets                         *)
(* ------------------------------------------------------------------ *)

type xi =
  | Xld_int of int
  | Xld_str of int
  | Xjmp of int
  | Xjif of Pfm.cond * int * int
  | Xiswitch of (int * int) list * int
  | Xsswitch of (string * int) list * int
  | Xret of Pfm.verdict

let decode insns pc =
  match insns.(pc) with
  | Pfm.Ld_int f -> Xld_int f
  | Pfm.Ld_str f -> Xld_str f
  | Pfm.Jmp d -> Xjmp (pc + 1 + d)
  | Pfm.Jif (c, jt, jf) -> Xjif (c, pc + 1 + jt, pc + 1 + jf)
  | Pfm.Iswitch { tbl; default } ->
      Xiswitch
        ( Hashtbl.fold (fun k d acc -> (k, pc + 1 + d) :: acc) tbl [],
          pc + 1 + default )
  | Pfm.Sswitch { tbl; default } ->
      Xsswitch
        ( Hashtbl.fold (fun k d acc -> (k, pc + 1 + d) :: acc) tbl [],
          pc + 1 + default )
  | Pfm.Ret v -> Xret v

let xmap f = function
  | Xjmp t -> Xjmp (f t)
  | Xjif (c, a, b) -> Xjif (c, f a, f b)
  | Xiswitch (cs, d) -> Xiswitch (List.map (fun (k, t) -> (k, f t)) cs, f d)
  | Xsswitch (cs, d) -> Xsswitch (List.map (fun (k, t) -> (k, f t)) cs, f d)
  | (Xld_int _ | Xld_str _ | Xret _) as x -> x

(* Items: (ids bound at this position, instruction). *)
let encode ~name ~n_int_fields ~n_str_fields items =
  let a = Pfm.Asm.create () in
  let labels : (int, Pfm.Asm.label) Hashtbl.t = Hashtbl.create 64 in
  let lab id =
    match Hashtbl.find_opt labels id with
    | Some l -> l
    | None ->
        let l = Pfm.Asm.fresh_label a in
        Hashtbl.add labels id l;
        l
  in
  List.iter
    (fun (ids, xi) ->
      List.iter (fun id -> Pfm.Asm.place a (lab id)) ids;
      match xi with
      | Xld_int f -> Pfm.Asm.ld_int a f
      | Xld_str f -> Pfm.Asm.ld_str a f
      | Xjmp t -> Pfm.Asm.jmp a (lab t)
      | Xjif (c, t, f_) -> Pfm.Asm.jif a c ~jt:(lab t) ~jf:(lab f_)
      | Xiswitch (cs, d) ->
          Pfm.Asm.iswitch a
            (List.map (fun (k, t) -> (k, lab t)) cs)
            ~default:(lab d)
      | Xsswitch (cs, d) ->
          Pfm.Asm.sswitch a
            (List.map (fun (k, t) -> (k, lab t)) cs)
            ~default:(lab d)
      | Xret v -> Pfm.Asm.ret a v)
    items;
  Pfm.Asm.assemble a ~name ~n_int_fields ~n_str_fields

(* ------------------------------------------------------------------ *)
(* CFG helpers                                                        *)
(* ------------------------------------------------------------------ *)

let successors insns pc =
  match insns.(pc) with
  | Pfm.Ld_int _ | Pfm.Ld_str _ -> [ pc + 1 ]
  | Pfm.Jmp d -> [ pc + 1 + d ]
  | Pfm.Jif (_, jt, jf) -> [ pc + 1 + jt; pc + 1 + jf ]
  | Pfm.Iswitch { tbl; default } ->
      (pc + 1 + default) :: Hashtbl.fold (fun _ d acc -> (pc + 1 + d) :: acc) tbl []
  | Pfm.Sswitch { tbl; default } ->
      (pc + 1 + default) :: Hashtbl.fold (fun _ d acc -> (pc + 1 + d) :: acc) tbl []
  | Pfm.Ret _ -> []

let compute_preds insns =
  let n = Array.length insns in
  let p = Array.make n [] in
  for pc = 0 to n - 1 do
    List.iter (fun s -> if s >= 0 && s < n then p.(s) <- pc :: p.(s))
      (successors insns pc)
  done;
  p

(* ------------------------------------------------------------------ *)
(* Cascade runs                                                       *)
(* ------------------------------------------------------------------ *)

type elt = {
  e_head : int;
  e_field : int;
  e_cond : Pfm.cond;
  e_jt : int;   (* absolute *)
  e_next : int; (* absolute jf target: next head, or the run's fall-out *)
}

let element_at insns pc =
  if pc + 1 >= Array.length insns then None
  else
    match insns.(pc), insns.(pc + 1) with
    | Pfm.Ld_int f, Pfm.Jif (cond, jt, jf) -> (
        match cond with
        | Pfm.Eq _ | Pfm.In_range _ | Pfm.Masked_eq _ ->
            let e_jt = pc + 2 + jt and e_next = pc + 2 + jf in
            if e_next > pc + 1 then
              Some { e_head = pc; e_field = f; e_cond = cond; e_jt; e_next }
            else None
        | _ -> None)
    | _ -> None

let collect_run insns pc0 =
  let rec go pc acc field =
    match element_at insns pc with
    | Some e when (match field with None -> true | Some f -> f = e.e_field) ->
        go e.e_next (e :: acc) (Some e.e_field)
    | _ -> (List.rev acc, pc)
  in
  go pc0 [] None

(* Interiors and every head but the first reachable from inside the
   run region only. *)
let run_closed preds elts fallout =
  let first = (List.hd elts).e_head in
  let in_region pc = pc >= first && pc < fallout in
  List.for_all
    (fun e ->
      let interior_ok = ref true in
      for pc = e.e_head + 1 to e.e_next - 1 do
        if
          not
            (List.for_all
               (fun pr -> pr >= e.e_head && pr < e.e_next)
               preds.(pc))
        then interior_ok := false
      done;
      !interior_ok
      && (e.e_head = first || List.for_all in_region preds.(e.e_head)))
    elts

let eq_key = function
  | Pfm.Eq k -> Some k
  | Pfm.In_range (lo, hi) when lo = hi -> Some lo
  | _ -> None

let prefix_mask m =
  m <> 0
  && m land 0xffffffff = m
  && (let inv = lnot m land 0xffffffff in
      inv land (inv + 1) = 0)

let masked_of = function
  | Pfm.Masked_eq { mask; value } when prefix_mask mask && value land mask = value
    -> Some (mask, value)
  | _ -> None

let cond_disjoint a b =
  match a, b with
  | Pfm.Eq x, Pfm.Eq y -> x <> y
  | Pfm.Eq x, Pfm.In_range (lo, hi) | Pfm.In_range (lo, hi), Pfm.Eq x ->
      x < lo || x > hi
  | Pfm.In_range (a1, b1), Pfm.In_range (a2, b2) -> b1 < a2 || b2 < a1
  | Pfm.Masked_eq { mask = m1; value = v1 }, Pfm.Masked_eq { mask = m2; value = v2 }
    ->
      let common = m1 land m2 in
      v1 land common <> v2 land common
  | Pfm.Eq x, Pfm.Masked_eq { mask; value }
  | Pfm.Masked_eq { mask; value }, Pfm.Eq x ->
      x land mask <> value
  | _ -> false

let pairwise_disjoint conds =
  let rec go = function
    | [] -> true
    | c :: rest -> List.for_all (cond_disjoint c) rest && go rest
  in
  go conds

(* Estimated matches for an element: entries into its body when the
   body is private, else head-count differences.  Heuristic only —
   correctness never depends on it. *)
let elt_heat counters e ~next_is_head =
  if e.e_jt > e.e_head + 1 && e.e_jt < e.e_next then counters.(e.e_jt)
  else
    max 0
      (counters.(e.e_head)
      - (if next_is_head then counters.(e.e_next) else 0))

(* ------------------------------------------------------------------ *)
(* Region emitters.  Each returns items; [rw] is the global id rewrite
   (removed heads of switch-converted runs -> their fall-out).        *)
(* ------------------------------------------------------------------ *)

let with_ends elts fallout =
  let rec go = function
    | [] -> []
    | [ e ] -> [ (e, fallout) ]
    | e :: (e2 :: _ as rest) -> (e, e2.e_head) :: go rest
  in
  go elts

(* Body of one element, with targets rewritten and an explicit jump
   appended when the body could fall off its original end. *)
let interior_items insns rw e end_ =
  let items = ref [] in
  for pc = e.e_head + 2 to end_ - 1 do
    items := ([ pc ], xmap rw (decode insns pc)) :: !items
  done;
  let items = List.rev !items in
  if end_ - 1 >= e.e_head + 2 then
    match insns.(end_ - 1) with
    | Pfm.Ld_int _ | Pfm.Ld_str _ -> items @ [ ([], Xjmp (rw end_)) ]
    | _ -> items
  else items

let emit_eq_switch insns rw field elts fallout =
  let ends = with_ends elts fallout in
  let cases =
    List.map
      (fun e ->
        match eq_key e.e_cond with
        | Some k -> (k, rw e.e_jt)
        | None -> assert false)
      elts
  in
  ([ (List.hd elts).e_head ], Xld_int field)
  :: ([], Xiswitch (cases, rw fallout))
  :: List.concat_map (fun (e, end_) -> interior_items insns rw e end_) ends

(* Shared by reorder and the trie's in-group chains: emit blocks in
   the given order, re-chaining "continue scanning" through fresh ids.
   [entry_id] is additionally bound at the first block so external
   entries still scan everything.  [exhausted] is where scanning ends
   (the run fall-out, or it for a trie group since other groups cannot
   match once this group's coarse test has matched). *)
let emit_chain insns rw fresh heads field blocks ~entry_id ~exhausted =
  let syn = List.map (fun _ -> fresh ()) blocks in
  let nexts =
    match syn with [] -> [] | _ :: tl -> tl @ [ exhausted ]
  in
  List.concat
    (List.mapi
       (fun i ((e : elt), end_) ->
         let self = List.nth syn i and next = List.nth nexts i in
         let local t = if List.mem t heads && t <> e.e_head then next else t in
         let rw' t = rw (local t) in
         let bound =
           if i = 0 then
             match entry_id with Some id -> [ id; self ] | None -> [ self ]
           else [ self ]
         in
         (* The selector-failed edge must test the next block in the
            NEW order, even when this block was originally last (its
            e_next is the fall-out, which [local] would leave alone). *)
         (bound, Xld_int field)
         :: ([], Xjif (e.e_cond, rw' e.e_jt, rw next))
         :: interior_items insns rw' e end_)
       blocks)

(* ------------------------------------------------------------------ *)
(* The driver                                                         *)
(* ------------------------------------------------------------------ *)

type region = {
  r_start : int;
  r_stop : int; (* exclusive *)
  r_emit : (int -> int) -> (int list * xi) list;
}

let optimize_exn (p : Pfm.program) =
  let insns = p.Pfm.insns and counters = p.Pfm.counters in
  let n = Array.length insns in
  let preds = compute_preds insns in
  let applied = ref [] in
  let regions = ref [] in
  let removed_heads : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let syn_counter = ref 0 in
  let fresh () =
    decr syn_counter;
    !syn_counter
  in
  let pc = ref 0 in
  while !pc < n do
    let advanced = ref false in
    (match collect_run insns !pc with
     | elts, fallout when List.length elts >= 2 && run_closed preds elts fallout
       -> (
         let len = List.length elts in
         let field = (List.hd elts).e_field in
         let conds = List.map (fun e -> e.e_cond) elts in
         let keys = List.map (fun e -> eq_key e.e_cond) elts in
         let all_keys = List.filter_map (fun k -> k) keys in
         let distinct_keys =
           List.length all_keys = len
           && List.length (List.sort_uniq compare all_keys) = len
         in
         let ends = with_ends elts fallout in
         let heats =
           List.map
             (fun (e, end_) -> elt_heat counters e ~next_is_head:(end_ <> fallout))
             ends
         in
         if len >= 4 && distinct_keys then begin
           (* eq-cascade -> hashed switch *)
           List.iter
             (fun e ->
               if e.e_head <> (List.hd elts).e_head then
                 Hashtbl.replace removed_heads e.e_head fallout)
             elts;
           regions :=
             { r_start = !pc; r_stop = fallout;
               r_emit =
                 (fun rw -> emit_eq_switch insns rw field elts fallout) }
             :: !regions;
           applied :=
             ("eq-switch",
              Printf.sprintf "field %d, %d keys" field len)
             :: !applied;
           pc := fallout;
           advanced := true
         end
         else begin
           let masked = List.map (fun e -> masked_of e.e_cond) elts in
           let all_masked = List.for_all (fun m -> m <> None) masked in
           let octets =
             List.filter_map
               (fun m ->
                 match m with
                 | Some (mask, value) when mask land 0xff000000 = 0xff000000 ->
                     Some (value lsr 24)
                 | _ -> None)
               masked
           in
           let heads = List.map (fun e -> e.e_head) elts in
           if
             len >= 4 && all_masked
             && List.length octets = len
             && List.length (List.sort_uniq compare octets) >= 2
             && pairwise_disjoint conds
           then begin
             (* CIDR-trie lowering: one-level radix on the top octet *)
             let blocks = List.combine ends octets in
             let groups =
               List.sort_uniq compare octets
               |> List.map (fun o ->
                      let members =
                        List.filter_map
                          (fun (be, o') -> if o' = o then Some be else None)
                          blocks
                      in
                      let heat =
                        List.fold_left
                          (fun acc (e, end_) ->
                            acc
                            + elt_heat counters e
                                ~next_is_head:(end_ <> fallout))
                          0 members
                      in
                      (o, heat, members))
             in
             let groups =
               List.stable_sort (fun (_, h1, _) (_, h2, _) -> compare h2 h1)
                 groups
             in
             let entry = (List.hd elts).e_head in
             regions :=
               { r_start = !pc; r_stop = fallout;
                 r_emit =
                   (fun rw ->
                     let tests = List.map (fun _ -> fresh ()) groups in
                     let chain_entries = List.map (fun _ -> fresh ()) groups in
                     let test_nexts =
                       match tests with
                       | [] -> []
                       | _ :: tl -> tl @ [ fallout ]
                     in
                     let test_items =
                       List.concat
                         (List.mapi
                            (fun i (o, _, _) ->
                              let bound = [ List.nth tests i ] in
                              let bound = if i = 0 then entry :: bound else bound in
                              [ (bound, Xld_int field);
                                ( [],
                                  Xjif
                                    ( Pfm.Masked_eq
                                        { mask = 0xff000000;
                                          value = o lsl 24 },
                                      List.nth chain_entries i,
                                      rw (List.nth test_nexts i) ) ) ])
                            groups)
                     in
                     let chain_items =
                       List.concat
                         (List.mapi
                            (fun i (_, _, members) ->
                              emit_chain insns rw fresh heads field members
                                ~entry_id:(Some (List.nth chain_entries i))
                                ~exhausted:fallout)
                            groups)
                     in
                     test_items @ chain_items) }
               :: !regions;
             applied :=
               ("cidr-trie",
                Printf.sprintf "field %d, %d prefixes in %d octet groups"
                  field len (List.length groups))
             :: !applied;
             pc := fallout;
             advanced := true
           end
           else if pairwise_disjoint conds then begin
             (* hot-rule reordering within a first-match-safe class *)
             let order =
               List.stable_sort
                 (fun (_, h1) (_, h2) -> compare h2 h1)
                 (List.combine ends heats)
             in
             let reordered = List.map fst order in
             let changed = reordered <> ends in
             let any_heat = List.exists (fun h -> h > 0) heats in
             if changed && any_heat then begin
               let entry = (List.hd elts).e_head in
               let heads = List.map (fun e -> e.e_head) elts in
               regions :=
                 { r_start = !pc; r_stop = fallout;
                   r_emit =
                     (fun rw ->
                       emit_chain insns rw fresh heads field reordered
                         ~entry_id:(Some entry) ~exhausted:fallout) }
                 :: !regions;
               applied :=
                 ("hot-reorder",
                  Printf.sprintf "field %d, %d rules" field len)
                 :: !applied;
               pc := fallout;
               advanced := true
             end
           end
         end)
     | _ -> ());
    if not !advanced then begin
      (* switch re-bucketing: hoist a dominant case over the hash *)
      (if !pc + 1 < n then
         match insns.(!pc), insns.(!pc + 1) with
         | Pfm.Ld_int f, Pfm.Iswitch { tbl; _ } ->
             let total = counters.(!pc + 1) in
             let hot =
               Hashtbl.fold
                 (fun k d acc ->
                   let t = !pc + 2 + d in
                   let c = if t < n then counters.(t) else 0 in
                   match acc with
                   | Some (_, _, best) when best >= c -> acc
                   | _ -> Some (k, t, c))
                 tbl None
             in
             (match hot with
              | Some (k, target, cnt) when cnt > 0 && cnt * 2 > total ->
                  let e = !pc in
                  regions :=
                    { r_start = e; r_stop = e + 2;
                      r_emit =
                        (fun rw ->
                          [ ([ e ], Xld_int f);
                            ([], Xjif (Pfm.Eq k, rw target, e + 1));
                            ([ e + 1 ], xmap rw (decode insns (e + 1))) ]) }
                    :: !regions;
                  applied :=
                    ("switch-hoist",
                     Printf.sprintf "iswitch at %d, hot key %d" (e + 1) k)
                    :: !applied;
                  pc := e + 2;
                  advanced := true
              | _ -> ())
         | Pfm.Ld_str f, Pfm.Sswitch { tbl; _ } ->
             let total = counters.(!pc + 1) in
             let hot =
               Hashtbl.fold
                 (fun k d acc ->
                   let t = !pc + 2 + d in
                   let c = if t < n then counters.(t) else 0 in
                   match acc with
                   | Some (_, _, best) when best >= c -> acc
                   | _ -> Some (k, t, c))
                 tbl None
             in
             (match hot with
              | Some (k, target, cnt) when cnt > 0 && cnt * 2 > total ->
                  let e = !pc in
                  regions :=
                    { r_start = e; r_stop = e + 2;
                      r_emit =
                        (fun rw ->
                          [ ([ e ], Xld_str f);
                            ([], Xjif (Pfm.Str_eq k, rw target, e + 1));
                            ([ e + 1 ], xmap rw (decode insns (e + 1))) ]) }
                    :: !regions;
                  applied :=
                    ("switch-hoist",
                     Printf.sprintf "sswitch at %d, hot key %S" (e + 1) k)
                    :: !applied;
                  pc := e + 2;
                  advanced := true
              | _ -> ())
         | _ -> ());
      if not !advanced then incr pc
    end
  done;
  if !regions = [] then None
  else begin
    let rw t =
      match Hashtbl.find_opt removed_heads t with Some f -> f | None -> t
    in
    let regions =
      List.sort (fun a b -> compare a.r_start b.r_start) !regions
    in
    let items = ref [] in
    let emit its = List.iter (fun it -> items := it :: !items) its in
    let pc = ref 0 in
    let rest = ref regions in
    while !pc < n do
      match !rest with
      | r :: tl when r.r_start = !pc ->
          emit (r.r_emit rw);
          pc := r.r_stop;
          rest := tl
      | _ ->
          emit [ ([ !pc ], xmap rw (decode insns !pc)) ];
          incr pc
    done;
    let prog =
      encode
        ~name:(p.Pfm.pname ^ "+opt")
        ~n_int_fields:p.Pfm.n_int_fields
        ~n_str_fields:p.Pfm.n_str_fields
        (List.rev !items)
    in
    Some
      ( prog,
        { applied = List.rev !applied;
          before_insns = n;
          after_insns = Array.length prog.Pfm.insns } )
  end

let optimize p =
  match optimize_exn p with
  | res -> res
  | exception _ -> None
