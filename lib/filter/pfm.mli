(** The Protego Filter Machine (PFM): a tiny typed bytecode for the
    argument-level policy checks on the LSM hot path.

    Declarative policy (the mount whitelist, the bind map, netfilter
    chains, the ppp device whitelist) is compiled once into a straight-line
    program over a small typed register machine and evaluated by one
    interpreter at every hook invocation, instead of re-walking the OCaml
    rule lists.  The design follows classic BPF: two accumulators (one
    integer, one string), forward-only jumps, and an explicit verdict at
    the end of every path, so every program provably terminates in at most
    [Array.length insns] steps.

    A program never reaches the interpreter unverified: {!verify} performs
    a single forward dataflow pass that rejects backward jumps,
    out-of-range jump targets or field indices, falls off the end of the
    program (a path without a verdict), conditionals that read an
    accumulator before any load wrote it, and unreachable instructions.

    Every instruction slot carries an execution counter
    (observability for /proc/protego/filter_stats and for the
    differential-rollout audit trail). *)

(** {1 Values and programs} *)

type verdict = Allow | Deny | Reject
(** [Reject] is only meaningful for packet programs (netfilter REJECT);
    syscall hooks map [Deny] and [Reject] to their errno alike. *)

(** A conditional test against the current accumulator.  Integer
    conditions read the integer accumulator (loaded by {!insn.Ld_int}),
    string conditions the string accumulator ({!insn.Ld_str}). *)
type cond =
  | Eq of int                              (** acc = imm *)
  | Ge of int                              (** acc >= imm *)
  | Le of int                              (** acc <= imm *)
  | In_range of int * int                  (** lo <= acc <= hi (inclusive) *)
  | All_bits of int                        (** acc land imm = imm (flag subset) *)
  | Masked_eq of { mask : int; value : int }  (** acc land mask = value (CIDR) *)
  | Eq_field of int                        (** acc = ints.(field) *)
  | Str_eq of string                       (** acc = imm *)
  | Str_prefix of string                   (** imm is a prefix of acc *)

(** Jump offsets are relative to the {e next} instruction and must be
    [>= 0]: a verified program can only move forward. *)
type insn =
  | Ld_int of int                          (** int accumulator <- ints.(i) *)
  | Ld_str of int                          (** string accumulator <- strs.(i) *)
  | Jmp of int
  | Jif of cond * int * int                (** (cond, jump-if-true, jump-if-false) *)
  | Iswitch of { tbl : (int, int) Hashtbl.t; default : int }
      (** hashed dispatch on the int accumulator; offsets like [Jmp] *)
  | Sswitch of { tbl : (string, int) Hashtbl.t; default : int }
      (** hashed dispatch on the string accumulator *)
  | Ret of verdict

(** The subject of one evaluation: the hook marshals the syscall arguments
    into two small arrays.  Field layouts are per-hook contracts defined in
    {!module:Pfm_compile}. *)
type ctx = { ints : int array; strs : string array }

type program = {
  pname : string;                  (** for diagnostics / disassembly *)
  n_int_fields : int;              (** arity of [ctx.ints] this program expects *)
  n_str_fields : int;
  insns : insn array;
  counters : int array;            (** per-instruction execution counts *)
  mutable retired : int;           (** total instructions executed by {!eval} *)
}

val max_insns : int
(** Upper bound the verifier places on program length. *)

(** {1 Verifier} *)

type verify_error =
  | Empty_program
  | Program_too_long of int
  | Backward_jump of int                   (** pc of the offending jump *)
  | Jump_out_of_range of int
  | Missing_verdict of int                 (** pc that can fall off the end *)
  | Int_field_out_of_range of int * int    (** (pc, field index) *)
  | Str_field_out_of_range of int * int
  | Int_acc_unset of int                   (** int cond before any [Ld_int] *)
  | Str_acc_unset of int
  | Unreachable_insn of int

val verify : program -> (unit, verify_error) result
(** First error of {!verify_all} — the historical single-error interface
    the dispatch path uses. *)

val verify_all : program -> (unit, verify_error list) result
(** Complete diagnostics: {e every} verification error, in program order
    (local operand errors for a slot before dataflow errors).  The two
    passes are independent — a slot that is only reachable through an
    ill-targeted jump is reported both for the bad jump (at the jump's pc)
    and as unreachable (at the target's pc).  The lint CLI renders this
    list.  [Empty_program] and [Program_too_long] preempt everything
    else. *)

val verify_error_to_string : verify_error -> string

(** {1 Evaluation} *)

val eval : program -> ctx -> verdict
(** Run a {e verified} program.  Raises [Invalid_argument] on a context
    narrower than the program's declared arity (never on a verified
    program evaluated on the matching hook's context). *)

val insn_count : program -> int
(** Total instructions executed so far (sum of the per-slot counters). *)

val reset_counters : program -> unit

(** {1 Disassembly} *)

val pp_insn : Format.formatter -> insn -> unit
val disassemble : program -> string
(** One instruction per line, with execution counts. *)

(** {1 Assembler}

    A tiny label-based assembler used by the compilers: emit instructions
    with symbolic jump targets, then {!Asm.assemble} resolves labels into
    relative offsets.  Labels occupy no space. *)

module Asm : sig
  type t
  type label

  val create : unit -> t
  val fresh_label : t -> label
  val place : t -> label -> unit
  (** Bind a label to the current position.  Raises [Invalid_argument] if
      already placed. *)

  val note : t -> string -> unit
  (** Attach a provenance marker (e.g. the source rule's text) to the
      current position.  Notes occupy no space; {!notes} returns them with
      resolved addresses after {!assemble}.  The static analyzer uses them
      to attribute findings on compiled code back to declarative rules. *)

  val notes : t -> (int * string) list
  (** [(pc, note)] pairs in program order; valid after {!assemble}. *)

  val ld_int : t -> int -> unit
  val ld_str : t -> int -> unit
  val jmp : t -> label -> unit
  val jif : t -> cond -> jt:label -> jf:label -> unit
  val iswitch : t -> (int * label) list -> default:label -> unit
  val sswitch : t -> (string * label) list -> default:label -> unit
  val ret : t -> verdict -> unit

  val assemble :
    t -> name:string -> n_int_fields:int -> n_str_fields:int -> program
  (** Resolve labels and build the program.  Raises [Invalid_argument] on
      an unplaced label.  The result is {e not} implicitly verified. *)
end
