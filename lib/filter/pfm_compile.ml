module Ktypes = Protego_kernel.Ktypes
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Ipaddr = Protego_net.Ipaddr
module Ppp = Protego_net.Ppp
module Phase = Protego_base.Phase
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts
module Asm = Pfm.Asm

type mount_rule = {
  fm_source : string;
  fm_target : string;
  fm_fstype : string;
  fm_flags : Ktypes.mount_flag list;
  fm_user_only : bool;
  fm_phase : Phase.guard;
}

let checked p =
  match Pfm.verify p with
  | Ok () -> p
  | Error e ->
      invalid_arg
        (Printf.sprintf "Pfm_compile: compiler for %s emitted invalid code: %s"
           p.Pfm.pname (Pfm.verify_error_to_string e))

let trivial name verdict =
  checked
    { Pfm.pname = name; n_int_fields = 0; n_str_fields = 0;
      insns = [| Pfm.Ret verdict |]; counters = [| 0 |]; retired = 0 }

(* Continue to the next instruction when [cond] holds, jump to [jf]
   otherwise. *)
let check a cond ~jf =
  let l = Asm.fresh_label a in
  Asm.jif a cond ~jt:l ~jf;
  Asm.place a l

(* Group [items] by [key], preserving both the order of first appearance of
   each key and the relative order of items within a group (required for
   first-match fidelity). *)
let group_by key items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some group -> group := item :: !group
      | None ->
          Hashtbl.replace tbl k (ref [ item ]);
          order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

(* --- phase dispatch ------------------------------------------------------

   Every task-scoped hook context leads with the task's lifecycle phase
   in ints.(0) (DESIGN.md §11).  When no rule of a policy carries a
   guard, the compilers skip the field entirely and emit exactly the
   time-invariant program they always did.  When at least one rule is
   guarded, the production compiler prefixes a leading iswitch on the
   phase index whose cases hold per-phase specializations of the rule
   ladder (out-of-range phases deny); the linear compiler instead
   clamps the phase once and re-checks each rule's guard inline, giving
   the equivalence prover a structurally different second derivation
   of the same per-phase semantics. *)

let i_phase = 0

let guard_cond = function
  | Phase.Upto q -> Pfm.Le (Phase.index q)
  | Phase.Exactly q -> Pfm.Eq (Phase.index q)
  | Phase.From q -> Pfm.Ge (Phase.index q)
  | Phase.Always -> invalid_arg "Pfm_compile.guard_cond: Always"

(* Production side: leading iswitch over the phase indices.  Each case
   gets a ladder over the rules active in that phase; a phase with no
   active rule (and any out-of-range phase value) denies. *)
let emit_phase_dispatch a ~l_deny ~emit_for_phase =
  Asm.ld_int a i_phase;
  let cases = List.map (fun p -> (Phase.index p, Asm.fresh_label a)) Phase.all in
  Asm.iswitch a cases ~default:l_deny;
  List.iter
    (fun (idx, lbl) ->
      Asm.place a lbl;
      emit_for_phase (Phase.of_index idx))
    cases

(* Linear side: one up-front clamp of the phase field (so out-of-range
   phases deny exactly as the production iswitch default does), then a
   per-rule inline guard check. *)
let emit_phase_clamp a ~l_deny =
  Asm.ld_int a i_phase;
  check a (Pfm.In_range (0, Phase.count - 1)) ~jf:l_deny

let emit_guard_check a g ~jf =
  match g with
  | Phase.Always -> ()
  | g ->
      Asm.ld_int a i_phase;
      check a (guard_cond g) ~jf

(* --- mount ------------------------------------------------------------- *)

let flag_bit = function
  | Ktypes.Mf_readonly -> 1
  | Ktypes.Mf_nosuid -> 2
  | Ktypes.Mf_nodev -> 4
  | Ktypes.Mf_noexec -> 8

let flags_mask flags = List.fold_left (fun m f -> m lor flag_bit f) 0 flags

let s_source = 0
let s_target = 1
let s_fstype = 2
let i_flags = 1

let mount_rule_text r =
  Printf.sprintf "allow %s %s %s%s" r.fm_source r.fm_target r.fm_fstype
    (match r.fm_phase with
    | Phase.Always -> ""
    | g -> " " ^ Phase.guard_to_string g)

let mount_phased rules =
  List.exists (fun r -> r.fm_phase <> Phase.Always) rules

(* [?phase] compiles the policy as one phase sees it: guards are
   resolved statically (inactive rules dropped) and no phase dispatch
   is emitted — the per-phase residual program the lint layer feeds to
   the abstract interpreter. *)
let mount_notes ?phase rules =
  let rules =
    match phase with
    | None -> rules
    | Some p -> List.filter (fun r -> Phase.active r.fm_phase p) rules
  in
  let phased = phase = None && mount_phased rules in
  if rules = [] then (trivial "mount" Pfm.Deny, [])
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let emit_ladder rules =
      (* Keep the original rule index for provenance notes. *)
      let groups =
        List.map
          (fun (src, rs) -> (src, Asm.fresh_label a, rs))
          (group_by (fun (_, r) -> r.fm_source) rules)
      in
      Asm.ld_str a s_source;
      Asm.sswitch a
        (List.map (fun (src, lbl, _) -> (src, lbl)) groups)
        ~default:l_deny;
      List.iter
        (fun (_, lbl, rs) ->
          Asm.place a lbl;
          let n = List.length rs in
          List.iteri
            (fun i (idx, r) ->
              Asm.note a (Printf.sprintf "rule %d: %s" idx (mount_rule_text r));
              let l_next =
                if i = n - 1 then l_deny else Asm.fresh_label a
              in
              Asm.ld_str a s_target;
              check a (Pfm.Str_eq r.fm_target) ~jf:l_next;
              if r.fm_fstype <> "auto" then begin
                (* The request's fstype must equal the rule's, or be the
                   "auto" wildcard. *)
                let l_flags = Asm.fresh_label a in
                Asm.ld_str a s_fstype;
                let l_try_auto = Asm.fresh_label a in
                Asm.jif a (Pfm.Str_eq r.fm_fstype) ~jt:l_flags ~jf:l_try_auto;
                Asm.place a l_try_auto;
                Asm.jif a (Pfm.Str_eq "auto") ~jt:l_flags ~jf:l_next;
                Asm.place a l_flags
              end;
              (* First triple match decides: its flag requirement is final
                 (no fallback to later rules), exactly like the reference.
                 An empty flag requirement always holds — emit the jump
                 directly rather than a trivially-true All_bits 0 test, so
                 compiled programs contain no constant branches. *)
              let mask = flags_mask r.fm_flags in
              if mask = 0 then Asm.jmp a l_allow
              else begin
                Asm.ld_int a i_flags;
                Asm.jif a (Pfm.All_bits mask) ~jt:l_allow ~jf:l_deny
              end;
              if i < n - 1 then Asm.place a l_next)
            rs)
        groups
    in
    let indexed = List.mapi (fun i r -> (i, r)) rules in
    if phased then
      emit_phase_dispatch a ~l_deny ~emit_for_phase:(fun p ->
          Asm.note a (Printf.sprintf "phase %s:" (Phase.to_string p));
          match
            List.filter (fun (_, r) -> Phase.active r.fm_phase p) indexed
          with
          | [] -> Asm.jmp a l_deny
          | active -> emit_ladder active)
    else emit_ladder indexed;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    let p = checked (Asm.assemble a ~name:"mount" ~n_int_fields:2 ~n_str_fields:3) in
    (p, Asm.notes a)
  end

let mount ?phase rules = fst (mount_notes ?phase rules)

let mount_ctx ~phase ~source ~target ~fstype ~flags =
  { Pfm.ints = [| phase; flags_mask flags |];
    strs = [| source; target; fstype |] }

(* --- umount ------------------------------------------------------------ *)

let u_target = 0
let i_mounted_by = 1
let i_ruid = 2

let umount_notes ?phase rules =
  let rules =
    match phase with
    | None -> rules
    | Some p -> List.filter (fun r -> Phase.active r.fm_phase p) rules
  in
  let phased = phase = None && mount_phased rules in
  if rules = [] then (trivial "umount" Pfm.Deny, [])
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let emit_ladder rules =
      (* Only the first rule naming a target is consulted by the reference
         walk, so one case per distinct target suffices. *)
      let groups =
        List.map
          (fun (target, rs) -> (target, Asm.fresh_label a, List.hd rs))
          (group_by (fun r -> r.fm_target) rules)
      in
      Asm.ld_str a u_target;
      Asm.sswitch a
        (List.map (fun (target, lbl, _) -> (target, lbl)) groups)
        ~default:l_deny;
      List.iter
        (fun (_, lbl, r) ->
          Asm.place a lbl;
          Asm.note a (Printf.sprintf "target %s (%s)" r.fm_target
                        (if r.fm_user_only then "user" else "users"));
          if r.fm_user_only then begin
            Asm.ld_int a i_mounted_by;
            Asm.jif a (Pfm.Eq_field i_ruid) ~jt:l_allow ~jf:l_deny
          end
          else Asm.jmp a l_allow)
        groups
    in
    if phased then
      emit_phase_dispatch a ~l_deny ~emit_for_phase:(fun p ->
          Asm.note a (Printf.sprintf "phase %s:" (Phase.to_string p));
          match List.filter (fun r -> Phase.active r.fm_phase p) rules with
          | [] -> Asm.jmp a l_deny
          | active -> emit_ladder active)
    else emit_ladder rules;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    let p = checked (Asm.assemble a ~name:"umount" ~n_int_fields:3 ~n_str_fields:1) in
    (p, Asm.notes a)
  end

let umount ?phase rules = fst (umount_notes ?phase rules)

let umount_ctx ~phase ~target ~mounted_by ~ruid =
  { Pfm.ints = [| phase; mounted_by; ruid |]; strs = [| target |] }

(* --- bind -------------------------------------------------------------- *)

let b_exe = 0
let i_port = 1
let i_proto = 2
let i_uid = 3

let bind_proto_code = function Bindconf.Tcp -> 6 | Bindconf.Udp -> 17

let bind_phased entries =
  List.exists (fun (e : Bindconf.entry) -> e.phase <> Phase.Always) entries

let bind_notes ?phase entries =
  let entries =
    match phase with
    | None -> entries
    | Some p ->
        List.filter (fun (e : Bindconf.entry) -> Phase.active e.phase p) entries
  in
  let phased = phase = None && bind_phased entries in
  if entries = [] then (trivial "bind" Pfm.Deny, [])
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let emit_ladder entries =
      let groups =
        List.map
          (fun (port, es) -> (port, Asm.fresh_label a, es))
          (group_by (fun ((_, e) : int * Bindconf.entry) -> e.port) entries)
      in
      Asm.ld_int a i_port;
      Asm.iswitch a
        (List.map (fun (port, lbl, _) -> (port, lbl)) groups)
        ~default:l_deny;
      List.iter
        (fun (_, lbl, es) ->
          Asm.place a lbl;
          let n = List.length es in
          List.iteri
            (fun i ((idx, e) : int * Bindconf.entry) ->
              Asm.note a
                (Printf.sprintf "entry %d: %d %s %s %d" idx e.port
                   (Bindconf.proto_to_string e.proto) e.exe e.owner);
              let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
              Asm.ld_int a i_proto;
              check a (Pfm.Eq (bind_proto_code e.proto)) ~jf:l_next;
              (* Port and protocol matched: this entry decides; a wrong
                 binary or owner is a denial, not a fallthrough. *)
              Asm.ld_str a b_exe;
              check a (Pfm.Str_eq e.exe) ~jf:l_deny;
              Asm.ld_int a i_uid;
              Asm.jif a (Pfm.Eq e.owner) ~jt:l_allow ~jf:l_deny;
              if i < n - 1 then Asm.place a l_next)
            es)
        groups
    in
    let indexed = List.mapi (fun i e -> (i, e)) entries in
    if phased then
      emit_phase_dispatch a ~l_deny ~emit_for_phase:(fun p ->
          Asm.note a (Printf.sprintf "phase %s:" (Phase.to_string p));
          match
            List.filter
              (fun ((_, e) : int * Bindconf.entry) -> Phase.active e.phase p)
              indexed
          with
          | [] -> Asm.jmp a l_deny
          | active -> emit_ladder active)
    else emit_ladder indexed;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    let p = checked (Asm.assemble a ~name:"bind" ~n_int_fields:4 ~n_str_fields:1) in
    (p, Asm.notes a)
  end

let bind ?phase entries = fst (bind_notes ?phase entries)

let bind_ctx ~phase ~port ~proto ~exe ~uid =
  { Pfm.ints = [| phase; port; bind_proto_code proto; uid |]; strs = [| exe |] }

(* --- netfilter --------------------------------------------------------- *)

(* Packets are not tasks: the OUTPUT chain keeps its phase-free context
   layout — a lifecycle dimension only exists for task-scoped hooks. *)

let f_proto = 0
let f_src = 1
let f_dst = 2
let f_sport = 3
let f_dport = 4
let f_icmp = 5
let f_syn = 6
let f_origin = 7
let f_owner = 8

(* [Other q] must never collide with the named protocols, mirroring the
   reference's variant comparison (assumes 0 <= q < 0x10000, the IP
   protocol number space). *)
let packet_proto_code = function
  | Packet.Icmp -> 1
  | Packet.Tcp -> 6
  | Packet.Udp -> 17
  | Packet.Other q -> 0x10000 lor q

let addr_int a = Int32.to_int (Ipaddr.to_int32 a) land 0xFFFFFFFF

let cidr_cond cidr =
  let len = Ipaddr.Cidr.prefix_len cidr in
  let mask = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF in
  Pfm.Masked_eq { mask; value = addr_int (Ipaddr.Cidr.network cidr) land mask }

let verdict_of_netfilter = function
  | Netfilter.Accept -> Pfm.Allow
  | Netfilter.Drop -> Pfm.Deny
  | Netfilter.Reject -> Pfm.Reject

let netfilter_of_verdict = function
  | Pfm.Allow -> Netfilter.Accept
  | Pfm.Deny -> Netfilter.Drop
  | Pfm.Reject -> Netfilter.Reject

(* A /0 prefix matches every address: emit nothing rather than a
   trivially-true Masked_eq with mask 0 (no constant branches in compiled
   code).  [compile_match] therefore skips such matches. *)
let match_is_trivial = function
  | Netfilter.Src c | Netfilter.Dst c -> Ipaddr.Cidr.prefix_len c = 0
  | _ -> false

let compile_match a m ~jf =
  if not (match_is_trivial m) then begin
    let field, cond =
      match m with
      | Netfilter.Proto p -> (f_proto, Pfm.Eq (packet_proto_code p))
      | Netfilter.Src c -> (f_src, cidr_cond c)
      | Netfilter.Dst c -> (f_dst, cidr_cond c)
      | Netfilter.Dst_port { lo; hi } -> (f_dport, Pfm.In_range (lo, hi))
      | Netfilter.Src_port { lo; hi } -> (f_sport, Pfm.In_range (lo, hi))
      | Netfilter.Icmp_type ty -> (f_icmp, Pfm.Eq (Packet.icmp_type_code ty))
      | Netfilter.Tcp_syn -> (f_syn, Pfm.Eq 1)
      | Netfilter.Owner_uid uid -> (f_owner, Pfm.Eq uid)
      | Netfilter.Origin_raw -> (f_origin, Pfm.Eq 1)
      | Netfilter.Origin_packet -> (f_origin, Pfm.Eq 2)
    in
    Pfm.Asm.ld_int a field;
    check a cond ~jf
  end

let netfilter_notes ~rules ~policy =
  let a = Asm.create () in
  let rec emit i = function
    | [] ->
        Asm.note a
          (Printf.sprintf "chain policy %s"
             (match policy with
             | Netfilter.Accept -> "ACCEPT"
             | Netfilter.Drop -> "DROP"
             | Netfilter.Reject -> "REJECT"));
        Asm.ret a (verdict_of_netfilter policy)
    | (r : Netfilter.rule) :: rest ->
        Asm.note a (Printf.sprintf "rule %d: %s" i (Netfilter.rule_to_spec r));
        if List.for_all match_is_trivial r.matches then
          (* A match-anything rule terminates the walk; later rules are
             dead code the verifier would (rightly) reject. *)
          Asm.ret a (verdict_of_netfilter r.target)
        else begin
          let l_next = Asm.fresh_label a in
          List.iter (fun m -> compile_match a m ~jf:l_next) r.matches;
          Asm.ret a (verdict_of_netfilter r.target);
          Asm.place a l_next;
          emit (i + 1) rest
        end
  in
  emit 0 rules;
  let p = checked (Asm.assemble a ~name:"nf_output" ~n_int_fields:9 ~n_str_fields:0) in
  (p, Asm.notes a)

let netfilter ~rules ~policy = fst (netfilter_notes ~rules ~policy)

let packet_ctx (pkt : Packet.t) ~origin =
  let proto =
    match pkt.transport with
    | Packet.Icmp_msg _ -> 1
    | Packet.Tcp_seg _ -> 6
    | Packet.Udp_dgram _ -> 17
    | Packet.Raw_payload { protocol; _ } -> 0x10000 lor protocol
  in
  let opt_port = function Some p -> p | None -> min_int in
  let icmp =
    match pkt.transport with
    | Packet.Icmp_msg { icmp_type; _ } -> Packet.icmp_type_code icmp_type
    | Packet.Tcp_seg _ | Packet.Udp_dgram _ | Packet.Raw_payload _ -> min_int
  in
  let syn =
    match pkt.transport with
    | Packet.Tcp_seg { syn = true; payload = ""; _ } -> 1
    | Packet.Tcp_seg _ | Packet.Icmp_msg _ | Packet.Udp_dgram _
    | Packet.Raw_payload _ -> 0
  in
  let origin_code, owner =
    match origin with
    | Packet.Kernel_stack -> (0, min_int)
    | Packet.Raw_app { uid } -> (1, uid)
    | Packet.Packet_app { uid } -> (2, uid)
  in
  { Pfm.ints =
      [| proto; addr_int pkt.src; addr_int pkt.dst;
         opt_port (Packet.src_port pkt); opt_port (Packet.dst_port pkt);
         icmp; syn; origin_code; owner |];
    strs = [||] }

(* --- ppp modem-configuration ioctl ------------------------------------- *)

let p_device = 0
let i_safe = 1

let ppp_devices_of (policy : Pppopts.t) =
  List.filter_map
    (function Pppopts.Allow_device (d, g) -> Some (d, g) | _ -> None)
    policy.Pppopts.directives

let ppp_phased devices =
  List.exists (fun (_, g) -> g <> Phase.Always) devices

let ppp_ioctl_notes ?phase (policy : Pppopts.t) =
  let devices =
    let all = ppp_devices_of policy in
    match phase with
    | None -> all
    | Some p -> List.filter (fun (_, g) -> Phase.active g p) all
  in
  let phased = phase = None && ppp_phased devices in
  if devices = [] then (trivial "ppp_ioctl" Pfm.Deny, [])
  else begin
    let a = Asm.create () in
    let l_safe = Asm.fresh_label a in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let emit_switch devices =
      Asm.note a
        (Printf.sprintf "allow-device %s"
           (String.concat "," (List.map fst devices)));
      (* Exact entries go through the string switch; glob entries
         ([/dev/ttyS*]) fall out of its default into a prefix-check
         chain.  Every match lands on the same safe-bit check, so the
         split is order-insensitive and stays provably equal to the
         linear first-match compilation. *)
      let exacts, globs =
        List.partition (fun (d, _) -> Pppopts.glob_stem d = None) devices
      in
      let stems =
        List.sort_uniq compare
          (List.filter_map (fun (d, _) -> Pppopts.glob_stem d) globs)
      in
      let emit_globs () =
        let n = List.length stems in
        List.iteri
          (fun i stem ->
            let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
            Asm.ld_str a p_device;
            Asm.jif a (Pfm.Str_prefix stem) ~jt:l_safe ~jf:l_next;
            if i < n - 1 then Asm.place a l_next)
          stems
      in
      match (exacts, stems) with
      | [], [] -> Asm.jmp a l_deny
      | [], _ -> emit_globs ()
      | _, [] ->
          Asm.ld_str a p_device;
          Asm.sswitch a
            (List.sort_uniq compare
               (List.map (fun (d, _) -> (d, l_safe)) exacts))
            ~default:l_deny
      | _, _ ->
          let l_globs = Asm.fresh_label a in
          Asm.ld_str a p_device;
          Asm.sswitch a
            (List.sort_uniq compare
               (List.map (fun (d, _) -> (d, l_safe)) exacts))
            ~default:l_globs;
          Asm.place a l_globs;
          emit_globs ()
    in
    if phased then
      emit_phase_dispatch a ~l_deny ~emit_for_phase:(fun p ->
          Asm.note a (Printf.sprintf "phase %s:" (Phase.to_string p));
          match List.filter (fun (_, g) -> Phase.active g p) devices with
          | [] -> Asm.jmp a l_deny
          | active -> emit_switch active)
    else emit_switch devices;
    Asm.place a l_safe;
    Asm.ld_int a i_safe;
    Asm.jif a (Pfm.Eq 1) ~jt:l_allow ~jf:l_deny;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    let p =
      checked (Asm.assemble a ~name:"ppp_ioctl" ~n_int_fields:2 ~n_str_fields:1)
    in
    (p, Asm.notes a)
  end

let ppp_ioctl ?phase policy = fst (ppp_ioctl_notes ?phase policy)

let ppp_ctx ~phase ~device ~opt =
  { Pfm.ints = [| phase; (if Ppp.option_is_safe opt then 1 else 0) |];
    strs = [| device |] }

(* --- reference (linear) compilers --------------------------------------

   Straight-line transliterations of each policy in declaration order,
   with none of the hash-dispatch or grouping tricks the production
   compilers use.  They exist to give `protego-lint --prove` and the
   equivalence test suites an independently-derived second program per
   source: if the production compiler's dispatch structure ever drifts
   from first-match semantics, Pfm_equiv.prove against these programs
   produces a replayable counterexample.  Phase guards are compiled
   inline (clamp once, then re-check per rule) rather than as a leading
   switch, so the prover relates two genuinely different derivations of
   the per-phase semantics. *)

let mount_linear rules =
  if rules = [] then trivial "mount_linear" Pfm.Deny
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let phased = mount_phased rules in
    if phased then emit_phase_clamp a ~l_deny;
    let n = List.length rules in
    List.iteri
      (fun i r ->
        let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
        emit_guard_check a r.fm_phase ~jf:l_next;
        Asm.ld_str a s_source;
        check a (Pfm.Str_eq r.fm_source) ~jf:l_next;
        Asm.ld_str a s_target;
        check a (Pfm.Str_eq r.fm_target) ~jf:l_next;
        if r.fm_fstype <> "auto" then begin
          let l_flags = Asm.fresh_label a in
          let l_try_auto = Asm.fresh_label a in
          Asm.ld_str a s_fstype;
          Asm.jif a (Pfm.Str_eq r.fm_fstype) ~jt:l_flags ~jf:l_try_auto;
          Asm.place a l_try_auto;
          Asm.jif a (Pfm.Str_eq "auto") ~jt:l_flags ~jf:l_next;
          Asm.place a l_flags
        end;
        let mask = flags_mask r.fm_flags in
        if mask = 0 then Asm.jmp a l_allow
        else begin
          Asm.ld_int a i_flags;
          Asm.jif a (Pfm.All_bits mask) ~jt:l_allow ~jf:l_deny
        end;
        if i < n - 1 then Asm.place a l_next)
      rules;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    checked
      (Asm.assemble a ~name:"mount_linear" ~n_int_fields:2 ~n_str_fields:3)
  end

let umount_linear rules =
  if rules = [] then trivial "umount_linear" Pfm.Deny
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let phased = mount_phased rules in
    if phased then emit_phase_clamp a ~l_deny;
    let n = List.length rules in
    (* The first rule naming a target decides in the reference walk;
       a straight in-order scan reproduces that without grouping. *)
    List.iteri
      (fun i r ->
        let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
        emit_guard_check a r.fm_phase ~jf:l_next;
        Asm.ld_str a u_target;
        check a (Pfm.Str_eq r.fm_target) ~jf:l_next;
        if r.fm_user_only then begin
          Asm.ld_int a i_mounted_by;
          Asm.jif a (Pfm.Eq_field i_ruid) ~jt:l_allow ~jf:l_deny
        end
        else Asm.jmp a l_allow;
        if i < n - 1 then Asm.place a l_next)
      rules;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    checked
      (Asm.assemble a ~name:"umount_linear" ~n_int_fields:3 ~n_str_fields:1)
  end

let bind_linear entries =
  if entries = [] then trivial "bind_linear" Pfm.Deny
  else begin
    let a = Asm.create () in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let phased = bind_phased entries in
    if phased then emit_phase_clamp a ~l_deny;
    let n = List.length entries in
    List.iteri
      (fun i (e : Bindconf.entry) ->
        let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
        emit_guard_check a e.phase ~jf:l_next;
        Asm.ld_int a i_port;
        check a (Pfm.Eq e.port) ~jf:l_next;
        Asm.ld_int a i_proto;
        check a (Pfm.Eq (bind_proto_code e.proto)) ~jf:l_next;
        (* Port and protocol matched: this entry decides, as in the
           production compiler and the reference walk. *)
        Asm.ld_str a b_exe;
        check a (Pfm.Str_eq e.exe) ~jf:l_deny;
        Asm.ld_int a i_uid;
        Asm.jif a (Pfm.Eq e.owner) ~jt:l_allow ~jf:l_deny;
        if i < n - 1 then Asm.place a l_next)
      entries;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    checked (Asm.assemble a ~name:"bind_linear" ~n_int_fields:4 ~n_str_fields:1)
  end

let netfilter_linear ~rules ~policy =
  (* Conjunction order inside a rule is semantically free; reversing it
     yields a genuinely different instruction stream for the prover to
     relate to the production one. *)
  let rev (r : Netfilter.rule) = { r with Netfilter.matches = List.rev r.matches } in
  fst (netfilter_notes ~rules:(List.map rev rules) ~policy)

let ppp_linear (policy : Pppopts.t) =
  let devices = ppp_devices_of policy in
  if devices = [] then trivial "ppp_linear" Pfm.Deny
  else begin
    let a = Asm.create () in
    let l_safe = Asm.fresh_label a in
    let l_allow = Asm.fresh_label a and l_deny = Asm.fresh_label a in
    let phased = ppp_phased devices in
    if phased then emit_phase_clamp a ~l_deny;
    let n = List.length devices in
    List.iteri
      (fun i (d, g) ->
        let l_next = if i = n - 1 then l_deny else Asm.fresh_label a in
        emit_guard_check a g ~jf:l_next;
        Asm.ld_str a p_device;
        (let cond =
           match Pppopts.glob_stem d with
           | Some stem -> Pfm.Str_prefix stem
           | None -> Pfm.Str_eq d
         in
         check a cond ~jf:l_next);
        Asm.jmp a l_safe;
        if i < n - 1 then Asm.place a l_next)
      devices;
    Asm.place a l_safe;
    Asm.ld_int a i_safe;
    Asm.jif a (Pfm.Eq 1) ~jt:l_allow ~jf:l_deny;
    Asm.place a l_allow;
    Asm.ret a Pfm.Allow;
    Asm.place a l_deny;
    Asm.ret a Pfm.Deny;
    checked (Asm.assemble a ~name:"ppp_linear" ~n_int_fields:2 ~n_str_fields:1)
  end
