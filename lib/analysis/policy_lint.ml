(* Cross-source semantic lint over the declarative Protego policies.

   Each check answers one question about what a policy *means*: does an
   entry ever take effect, does it grant more than the administrator
   plausibly intended, does one source contradict another.  Structural
   validity (parse errors, duplicate ports on the enforcement path) is
   the parsers' job; this module assumes parsed input — including input
   from the lax parsers, precisely so that it can report the defects the
   strict parsers would reject.

   Every check has a stable finding code (PL-* for declarative checks,
   PFM-* for facts derived from the compiled bytecode via Pfm_absint).
   Codes are append-only: tools and CI match on them. *)

module Pfm = Protego_filter.Pfm
module Pfm_compile = Protego_filter.Pfm_compile
module Ktypes = Protego_kernel.Ktypes
module Bindconf = Protego_policy.Bindconf
module Sudoers = Protego_policy.Sudoers
module Pppopts = Protego_policy.Pppopts
module Netfilter = Protego_net.Netfilter
module Ipaddr = Protego_net.Ipaddr
module Phase = Protego_base.Phase

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type finding = {
  code : string;
  severity : severity;
  source : string;   (* "mounts" | "binds" | "delegation" | "netfilter:<chain>"
                        | "ppp" | "cross" *)
  locus : string;    (* rule/entry identification within the source *)
  message : string;
}

let finding_to_string f =
  Printf.sprintf "%s %s %s (%s): %s" f.code
    (severity_to_string f.severity)
    f.source f.locus f.message

type accounts = {
  user_names : (string * int) list;   (* name, uid *)
  group_names : string list;
}

let no_accounts = { user_names = []; group_names = [] }

type input = {
  mounts : Pfm_compile.mount_rule list;
  binds : Bindconf.entry list;
  delegation : Sudoers.t;
  accounts : accounts;
  ppp : Pppopts.t option;
  chains : (string * Netfilter.rule list * Netfilter.verdict) list;
}

let empty_input =
  {
    mounts = [];
    binds = [];
    delegation = Sudoers.empty;
    accounts = no_accounts;
    ppp = None;
    chains = [];
  }

(* --- phase guards: PL-PH* ------------------------------------------------

   Phases only ever advance (Setup -> Serving -> Steady, DESIGN.md §11),
   so a guard is tighten-only exactly when it is downward closed: active
   from the start of life and, once inactive, inactive forever.  A guard
   that activates a rule *later* in the lifecycle grants privilege a
   task did not start with — the loosening the one-way transition
   machinery exists to rule out — and is an error in every source. *)

let check_guard emit what g =
  match g with
  | Phase.Always -> ()
  | g when Phase.downward_closed g -> ()
  | g ->
      emit
        (Printf.sprintf
           "%s has phase guard `%s' that activates later in the lifecycle: \
            guards must be tighten-only (downward closed)"
           what (Phase.guard_to_string g))

(* [guard_covers outer inner]: is [outer] active in every phase [inner]
   is?  First-match shadowing claims below are conditioned on coverage —
   an earlier rule active only during setup does not shadow a later
   always-active rule. *)
let guard_covers outer inner =
  List.for_all
    (fun p -> (not (Phase.active inner p)) || Phase.active outer p)
    Phase.all

let guards_overlap a b =
  List.exists (fun p -> Phase.active a p && Phase.active b p) Phase.all

(* --- mounts: PL-M* ------------------------------------------------------ *)

(* The set of request fstypes a whitelist rule matches: a rule whose
   fstype is the "auto" wildcard matches any request; otherwise the
   rule's own fstype plus the "auto" request wildcard. *)
let mount_fstype_subsumes earlier later =
  earlier.Pfm_compile.fm_fstype = "auto"
  || earlier.Pfm_compile.fm_fstype = later.Pfm_compile.fm_fstype

let sensitive_prefixes =
  [ "/etc"; "/usr"; "/bin"; "/sbin"; "/lib"; "/boot"; "/root"; "/proc"; "/sys" ]

let path_under prefix p =
  p = prefix
  || String.length p > String.length prefix
     && String.sub p 0 (String.length prefix) = prefix
     && p.[String.length prefix] = '/'

let lint_mounts rules =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message ->
        fs := { code; severity; source = "mounts"; locus; message } :: !fs)
      fmt
  in
  let arr = Array.of_list rules in
  Array.iteri
    (fun j r ->
      let locus = Printf.sprintf "rule %d" j in
      let text = Pfm_compile.mount_rule_text r in
      (* PL-M001: an earlier first-match rule fires on every request this
         one would, so this one never takes effect (its flag requirement
         in particular is silently replaced by the earlier rule's). *)
      check_guard
        (fun m -> f "PL-PH001" Error locus "%s" m)
        (Printf.sprintf "`%s'" text) r.Pfm_compile.fm_phase;
      (try
         for i = 0 to j - 1 do
           let e = arr.(i) in
           if
             e.Pfm_compile.fm_source = r.Pfm_compile.fm_source
             && e.Pfm_compile.fm_target = r.Pfm_compile.fm_target
             && mount_fstype_subsumes e r
             && guard_covers e.Pfm_compile.fm_phase r.Pfm_compile.fm_phase
           then begin
             f "PL-M001" Warning locus
               "shadowed by rule %d: first match decides, so `%s' never \
                takes effect%s"
               i text
               (if e.Pfm_compile.fm_flags <> r.Pfm_compile.fm_flags then
                  " (and the rules require different mount flags)"
                else "");
             raise Exit
           end
         done
       with Exit -> ());
      (* PL-M002 / PL-M003: a user-mountable filesystem without nosuid
         re-opens the setuid hole the whitelist exists to close; without
         nodev it hands out device nodes. *)
      if not (List.mem Ktypes.Mf_nosuid r.Pfm_compile.fm_flags) then
        f "PL-M002" Error locus
          "`%s' lacks nosuid: a user-controlled filesystem may carry \
           setuid binaries"
          text;
      if not (List.mem Ktypes.Mf_nodev r.Pfm_compile.fm_flags) then
        f "PL-M003" Warning locus
          "`%s' lacks nodev: a user-controlled filesystem may carry \
           device nodes"
          text;
      (* PL-M004: mounting over system paths hides or replaces them. *)
      if
        r.Pfm_compile.fm_target = "/"
        || List.exists
             (fun p -> path_under p r.Pfm_compile.fm_target)
             sensitive_prefixes
      then
        f "PL-M004" Warning locus "target %s shadows a system path"
          r.Pfm_compile.fm_target)
    arr;
  List.rev !fs

(* --- binds: PL-B* ------------------------------------------------------- *)

let lint_binds entries =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message ->
        fs := { code; severity; source = "binds"; locus; message } :: !fs)
      fmt
  in
  let arr = Array.of_list entries in
  Array.iteri
    (fun j (e : Bindconf.entry) ->
      let locus = Printf.sprintf "entry %d" j in
      check_guard
        (fun m -> f "PL-PH001" Error locus "%s" m)
        (Printf.sprintf "entry %d/%s" e.port (Bindconf.proto_to_string e.proto))
        e.Bindconf.phase;
      (* PL-B001: a port maps to exactly one application instance; the
         first entry wins (among entries whose guards can be active
         together) and this one never takes effect.  The strict parser
         refuses such files, so one reaching the kernel would bypass
         review. *)
      (try
         for i = 0 to j - 1 do
           let d = arr.(i) in
           if
             d.Bindconf.port = e.port && d.Bindconf.proto = e.proto
             && guards_overlap d.Bindconf.phase e.Bindconf.phase
           then begin
             f "PL-B001" Error locus
               "duplicate %d/%s: entry %d (%s uid %d) already claims it, \
                this entry never takes effect"
               e.port
               (Bindconf.proto_to_string e.proto)
               i d.Bindconf.exe d.Bindconf.owner;
             raise Exit
           end
         done
       with Exit -> ());
      (* PL-B002: the same port number handed to different binaries on
         tcp vs udp is usually a typo for one service. *)
      Array.iteri
        (fun i (d : Bindconf.entry) ->
          if
            i < j && d.Bindconf.port = e.port
            && d.Bindconf.proto <> e.proto
            && d.Bindconf.exe <> e.exe
          then
            f "PL-B002" Warning locus
              "port %d maps to %s (%s) but to %s (%s) in entry %d" e.port
              e.exe
              (Bindconf.proto_to_string e.proto)
              d.Bindconf.exe
              (Bindconf.proto_to_string d.Bindconf.proto)
              i)
        arr;
      (* PL-B003: the kernel consults the bind map only for ports below
         1024; anything else here is inert. *)
      if e.port < 1 || e.port >= 1024 then
        f "PL-B003" Warning locus
          "port %d is outside the privileged range [1,1023]; the entry \
           has no effect"
          e.port)
    arr;
  List.rev !fs

(* --- delegation: PL-S* -------------------------------------------------- *)

let rule_locus i = Printf.sprintf "rule %d" i

let lint_delegation (t : Sudoers.t) accounts =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message ->
        fs := { code; severity; source = "delegation"; locus; message } :: !fs)
      fmt
  in
  let rules = Array.of_list t.Sudoers.rules in
  (* PL-S001: a delegation cycle between concrete non-root users means
     each can reach the other's privileges; combined with one NOPASSWD
     link the whole cycle is password-free.  Edges: `u ALL=(v) ...'. *)
  let edges =
    Array.to_list rules
    |> List.concat_map (fun (r : Sudoers.rule) ->
           match (r.who, r.runas) with
           | Sudoers.User u, Sudoers.Runas_users vs when u <> "root" ->
               List.filter_map
                 (fun v -> if v <> "root" && v <> u then Some (u, v) else None)
                 vs
           | _ -> [])
  in
  let successors u = List.filter_map (fun (a, b) -> if a = u then Some b else None) edges in
  let reported = Hashtbl.create 8 in
  let rec dfs path u =
    if List.mem u path then begin
      (* Cycle = the path suffix from the first occurrence of [u]. *)
      let rec suffix = function
        | [] -> []
        | x :: _ when x = u -> [ x ]
        | x :: rest -> x :: suffix rest
      in
      let cycle = List.rev (suffix path) in
      let canon = List.sort compare cycle in
      if not (Hashtbl.mem reported canon) then begin
        Hashtbl.replace reported canon ();
        f "PL-S001" Warning
          (Printf.sprintf "users %s" (String.concat "," canon))
          "delegation cycle: %s"
          (String.concat " -> " (cycle @ [ u ]))
      end
    end
    else List.iter (dfs (u :: path)) (successors u)
  in
  List.iter (fun (u, _) -> dfs [] u) edges;
  Array.iteri
    (fun i (r : Sudoers.rule) ->
      let who_s =
        match r.who with
        | Sudoers.User u -> u
        | Sudoers.Group g -> "%" ^ g
        | Sudoers.All_users -> "ALL"
      in
      check_guard
        (fun m -> f "PL-PH001" Error (rule_locus i) "%s" m)
        (Printf.sprintf "rule for %s" who_s)
        r.Sudoers.rphase;
      let unrestricted = List.mem Sudoers.Any_command r.commands in
      (* PL-S002: passwordless unrestricted delegation from a non-root
         principal is root-equivalence without authentication — the exact
         thing the recency-of-authentication design exists to prevent. *)
      if
        unrestricted
        && List.mem Sudoers.Nopasswd r.tags
        && r.who <> Sudoers.User "root"
      then
        f "PL-S002" Error (rule_locus i)
          "%s may run ALL commands with NOPASSWD: root-equivalent without \
           authentication"
          who_s;
      (* PL-S003: SETENV on an unrestricted rule lets the invoker smuggle
         LD_PRELOAD & co. into any target-uid process. *)
      if unrestricted && List.mem Sudoers.Setenv r.tags then
        f "PL-S003" Warning (rule_locus i)
          "SETENV on an unrestricted rule: environment reaches every \
           command run as the target";
      (* PL-S004: names that resolve to nobody silently disable the rule
         (or worse, a later-created account inherits it). *)
      if accounts.user_names <> [] then begin
        let known u = List.mem_assoc u accounts.user_names in
        (match r.who with
        | Sudoers.User u when not (known u) ->
            f "PL-S004" Warning (rule_locus i) "unknown user %s" u
        | Sudoers.Group g when not (List.mem g accounts.group_names) ->
            f "PL-S004" Warning (rule_locus i) "unknown group %%%s" g
        | _ -> ());
        match r.runas with
        | Sudoers.Runas_users vs ->
            List.iter
              (fun v ->
                if not (known v) then
                  f "PL-S004" Warning (rule_locus i) "unknown runas user %s" v)
              vs
        | Sudoers.Runas_any -> ()
      end)
    rules;
  List.rev !fs

(* --- netfilter: PL-N* --------------------------------------------------- *)

let cidr_subset inner outer =
  Ipaddr.Cidr.prefix_len outer <= Ipaddr.Cidr.prefix_len inner
  && Ipaddr.Cidr.mem (Ipaddr.Cidr.network inner) outer

(* [match_implies a b]: does match [a] holding imply match [b] holds? *)
let match_implies a b =
  a = b
  ||
  match (a, b) with
  | Netfilter.Src c1, Netfilter.Src c2 | Netfilter.Dst c1, Netfilter.Dst c2 ->
      cidr_subset c1 c2
  | Netfilter.Dst_port p1, Netfilter.Dst_port p2 ->
      p2.lo <= p1.lo && p1.hi <= p2.hi
  | Netfilter.Src_port p1, Netfilter.Src_port p2 ->
      p2.lo <= p1.lo && p1.hi <= p2.hi
  | _ -> false

(* [rule_subsumes e r]: does [e] fire on every packet [r] fires on?
   Conservative: each of [e]'s matches must be implied by one of [r]'s
   (a match-free [e] fires on everything). *)
let rule_subsumes (e : Netfilter.rule) (r : Netfilter.rule) =
  List.for_all
    (fun me -> List.exists (fun mr -> match_implies mr me) r.Netfilter.matches)
    e.Netfilter.matches

let lint_chain name rules _policy =
  let source = "netfilter:" ^ name in
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message -> fs := { code; severity; source; locus; message } :: !fs)
      fmt
  in
  let arr = Array.of_list rules in
  Array.iteri
    (fun j (r : Netfilter.rule) ->
      try
        for i = 0 to j - 1 do
          let e = arr.(i) in
          if rule_subsumes e r then begin
            if e.Netfilter.target <> r.Netfilter.target then
              (* PL-N001: the earlier rule always fires first with the
                 opposite verdict — this rule is a lie about the policy. *)
              f "PL-N001" Error (rule_locus j)
                "`%s' is unreachable: rule %d (`%s') matches first with a \
                 conflicting target"
                (Netfilter.rule_to_spec r)
                i
                (Netfilter.rule_to_spec e)
            else
              (* PL-N002: harmless but dead weight. *)
              f "PL-N002" Warning (rule_locus j)
                "`%s' is redundant: rule %d already matches everything it \
                 does"
                (Netfilter.rule_to_spec r)
                i;
            raise Exit
          end
        done
      with Exit -> ())
    arr;
  List.rev !fs

(* --- ppp: PL-P* --------------------------------------------------------- *)

let lint_ppp (t : Pppopts.t) =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message ->
        fs := { code; severity; source = "ppp"; locus; message } :: !fs)
      fmt
  in
  let seen = Hashtbl.create 8 in
  List.iteri
    (fun i d ->
      match d with
      | Pppopts.Allow_device (dev, g) ->
          let locus = Printf.sprintf "directive %d" i in
          check_guard
            (fun m -> f "PL-PH001" Error locus "%s" m)
            (Printf.sprintf "allow-device %s" dev) g;
          (match Hashtbl.find_opt seen dev with
          | Some g' when guards_overlap g g' ->
              f "PL-P001" Warning locus "duplicate allow-device %s" dev
          | Some _ -> ()
          | None -> Hashtbl.replace seen dev g);
          if not (path_under "/dev" dev) then
            f "PL-P002" Warning locus
              "allow-device %s is not under /dev: unprivileged pppd would \
               get ioctl access to an arbitrary file"
              dev
      | _ -> ())
    t.Pppopts.directives;
  List.rev !fs

(* --- cross-source: PL-X* ------------------------------------------------ *)

(* Walk a chain considering only the matches determined by (port, proto):
   a rule carrying any other match kind may or may not fire, so it can't
   prove the port blocked — only an unconditional (for this packet
   shape) DROP/REJECT before any possible ACCEPT does. *)
let port_blocked rules policy ~port ~proto =
  let decided =
    List.find_opt
      (fun (r : Netfilter.rule) ->
        List.for_all
          (function
            | Netfilter.Proto p -> p = proto
            | Netfilter.Dst_port { lo; hi } -> lo <= port && port <= hi
            | _ -> false (* conditional on more than the port: skip rule *))
          r.Netfilter.matches)
      rules
  in
  match decided with
  | Some r -> r.Netfilter.target <> Netfilter.Accept
  | None -> policy <> Netfilter.Accept

let lint_cross (inp : input) =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message ->
        fs := { code; severity; source = "cross"; locus; message } :: !fs)
      fmt
  in
  (* PL-X001: a service the bind map authorizes on a port the packet
     filter then drops — the two sources disagree about intent. *)
  List.iteri
    (fun j (e : Bindconf.entry) ->
      let proto =
        match e.proto with
        | Bindconf.Tcp -> Protego_net.Packet.Tcp
        | Bindconf.Udp -> Protego_net.Packet.Udp
      in
      List.iter
        (fun (name, rules, policy) ->
          if port_blocked rules policy ~port:e.port ~proto then
            f "PL-X001" Warning
              (Printf.sprintf "binds entry %d" j)
              "port %d/%s is bind-mapped to %s but netfilter chain %s \
               blocks it"
              e.port
              (Bindconf.proto_to_string e.proto)
              e.exe name)
        inp.chains)
    inp.binds;
  (* PL-X002: a bind entry owned by a uid the account database has never
     heard of can never successfully bind. *)
  if inp.accounts.user_names <> [] then
    List.iteri
      (fun j (e : Bindconf.entry) ->
        if not (List.exists (fun (_, uid) -> uid = e.owner) inp.accounts.user_names)
        then
          f "PL-X002" Warning
            (Printf.sprintf "binds entry %d" j)
            "owner uid %d does not match any account" e.owner)
      inp.binds;
  List.rev !fs

(* --- compiled-program lints: PFM-* -------------------------------------- *)

module Absint = Pfm_absint

(* [entries] is the number of declarative rules behind the program: an
   empty whitelist compiles to a deny-all (never-Allow by design) and an
   empty chain to its policy verdict (possibly always-Allow by design),
   so the verdict-shape findings only make sense when rules exist. *)
let lint_program ~source ?(notes = []) ?(entries = 0) (p : Pfm.program) =
  let fs = ref [] in
  let f code severity locus fmt =
    Printf.ksprintf
      (fun message -> fs := { code; severity; source; locus; message } :: !fs)
      fmt
  in
  let s = Absint.analyze p in
  if entries > 0 then begin
    if Absint.always_allows s then
      f "PFM-ALWAYS-ALLOW" Error
        (Printf.sprintf "program %s" p.Pfm.pname)
        "the compiled policy allows every request: %d rule(s) have no \
         effect at all"
        entries;
    if Absint.never_allows s then
      f "PFM-NEVER-ALLOW" Warning
        (Printf.sprintf "program %s" p.Pfm.pname)
        "the compiled policy cannot allow any request despite %d rule(s)"
        entries
  end;
  (* Per-rule reachability: a note range containing unreachable
     instructions marks a rule that cannot (fully) take effect.  The
     abstract interpreter over-approximates reachability, so these are
     definite (see Pfm_absint's soundness note). *)
  let n = Array.length p.Pfm.insns in
  let ranges = Absint.note_ranges ~notes n in
  List.iter
    (fun (lo, hi, text) ->
      if lo <= hi then begin
        let dead = ref 0 in
        for pc = lo to hi do
          if not s.Absint.reachable.(pc) then incr dead
        done;
        if !dead = hi - lo + 1 then
          f "PFM-DEAD" Warning text
            "no input reaches this rule's code: it is dead (shadowed by \
             earlier rules)"
        else if !dead > 0 then
          f "PFM-DEAD" Warning text
            "part of this rule's code (%d of %d instructions) is \
             unreachable: earlier rules already decide every request it \
             could distinguish"
            !dead (hi - lo + 1)
      end)
    ranges;
  (* Constant conditionals outside already-reported dead rules: the test
     is decided before it runs.  Informational — first-match chains
     legitimately re-test refuted conditions. *)
  let dead_range pc =
    List.exists
      (fun (lo, hi, _) ->
        lo <= pc && pc <= hi
        &&
        let d = ref false in
        for q = lo to hi do
          if not s.Absint.reachable.(q) then d := true
        done;
        !d)
      ranges
  in
  List.iter
    (fun (pc, dir) ->
      if not (dead_range pc) then
        f "PFM-CONST-BRANCH" Info
          (match Absint.attribute ~notes pc with
          | Some text -> text
          | None -> Printf.sprintf "pc %d" pc)
          "conditional at pc %d always takes its %s edge" pc
          (if dir then "true" else "false"))
    s.Absint.const_branches;
  List.rev !fs

(* Per-phase reachability: for a phased source, compile the residual
   program each phase sees (guards resolved statically, {!Pfm_compile}'s
   [?phase]) and flag rules whose guard says they are active in that
   phase but whose code no input can reach there — shadowed by earlier
   rules active in the same phase.  The whole-policy PFM-DEAD check
   cannot see these: in the full program the rule's ladder code is
   reachable via some other phase. *)
let lint_phase_residuals ~source ~phased ~compile_at =
  if not phased then []
  else
    List.concat_map
      (fun ph ->
        let (p : Pfm.program), notes = compile_at ph in
        let s = Absint.analyze p in
        let ranges = Absint.note_ranges ~notes (Array.length p.Pfm.insns) in
        List.filter_map
          (fun (lo, hi, text) ->
            let all_dead = ref (lo <= hi) in
            for pc = lo to hi do
              if s.Absint.reachable.(pc) then all_dead := false
            done;
            if !all_dead then
              Some
                { code = "PFM-PHASE-DEAD"; severity = Warning; source;
                  locus = Printf.sprintf "phase %s: %s" (Phase.to_string ph) text;
                  message =
                    Printf.sprintf
                      "the rule's guard makes it active in phase %s, but no \
                       request can reach its code there: earlier rules \
                       active in the same phase already decide everything \
                       it could match"
                      (Phase.to_string ph) }
            else None)
          ranges)
      Phase.all

(* --- driver ------------------------------------------------------------- *)

let lint (inp : input) =
  let mount_prog () =
    let p, notes = Pfm_compile.mount_notes inp.mounts in
    lint_program ~source:"mounts" ~notes ~entries:(List.length inp.mounts) p
  in
  let umount_prog () =
    let p, notes = Pfm_compile.umount_notes inp.mounts in
    (* The umount program's verdict shape tracks the mount one; re-flagging
       NEVER-ALLOW here would duplicate every mounts finding. *)
    lint_program ~source:"mounts" ~notes ~entries:0 p
  in
  let bind_prog () =
    let p, notes = Pfm_compile.bind_notes inp.binds in
    lint_program ~source:"binds" ~notes ~entries:(List.length inp.binds) p
  in
  let chain_progs () =
    List.concat_map
      (fun (name, rules, policy) ->
        let p, notes = Pfm_compile.netfilter_notes ~rules ~policy in
        lint_program ~source:("netfilter:" ^ name) ~notes
          ~entries:(List.length rules) p)
      inp.chains
  in
  let ppp_prog () =
    match inp.ppp with
    | None -> []
    | Some t ->
        let p, notes = Pfm_compile.ppp_ioctl_notes t in
        lint_program ~source:"ppp" ~notes ~entries:0 p
  in
  let mount_phases () =
    lint_phase_residuals ~source:"mounts"
      ~phased:
        (List.exists
           (fun r -> r.Pfm_compile.fm_phase <> Phase.Always)
           inp.mounts)
      ~compile_at:(fun ph -> Pfm_compile.mount_notes ~phase:ph inp.mounts)
  in
  let bind_phases () =
    lint_phase_residuals ~source:"binds"
      ~phased:
        (List.exists
           (fun (e : Bindconf.entry) -> e.phase <> Phase.Always)
           inp.binds)
      ~compile_at:(fun ph -> Pfm_compile.bind_notes ~phase:ph inp.binds)
  in
  let ppp_phases () =
    match inp.ppp with
    | None -> []
    | Some t ->
        lint_phase_residuals ~source:"ppp"
          ~phased:
            (List.exists
               (function
                 | Pppopts.Allow_device (_, g) -> g <> Phase.Always
                 | _ -> false)
               t.Pppopts.directives)
          ~compile_at:(fun ph -> Pfm_compile.ppp_ioctl_notes ~phase:ph t)
  in
  List.concat
    [
      lint_mounts inp.mounts;
      mount_prog ();
      umount_prog ();
      mount_phases ();
      lint_binds inp.binds;
      bind_prog ();
      bind_phases ();
      lint_delegation inp.delegation inp.accounts;
      List.concat_map
        (fun (name, rules, policy) -> lint_chain name rules policy)
        inp.chains;
      chain_progs ();
      (match inp.ppp with None -> [] | Some t -> lint_ppp t);
      ppp_prog ();
      ppp_phases ();
      lint_cross inp;
    ]

(* --- reporting ---------------------------------------------------------- *)

let max_severity findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some s when severity_rank s >= severity_rank f.severity -> acc
      | _ -> Some f.severity)
    None findings

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

let render findings =
  match findings with
  | [] -> "no findings\n"
  | fs ->
      let lines = List.map finding_to_string fs in
      let errors = List.length (List.filter (fun f -> f.severity = Error) fs) in
      let warnings =
        List.length (List.filter (fun f -> f.severity = Warning) fs)
      in
      let infos = List.length (List.filter (fun f -> f.severity = Info) fs) in
      String.concat "\n" lines
      ^ Printf.sprintf "\n%d finding(s): %d error(s), %d warning(s), %d \
                        info\n"
          (List.length fs) errors warnings infos

(* --- netfilter chain files ---------------------------------------------- *)

(* The lint CLI reads a chain as a file of rule specs with an optional
   leading `policy ACCEPT|DROP|REJECT' line:

     policy DROP
     -p tcp --dport 22 -j ACCEPT
     -p icmp --icmp-type echo-request -j ACCEPT
*)
let parse_chain contents =
  let lines = String.split_on_char '\n' contents in
  let rec go policy rules = function
    | [] -> Ok (List.rev rules, policy)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go policy rules rest
        else
          match String.split_on_char ' ' line with
          | [ "policy"; v ] -> (
              match v with
              | "ACCEPT" -> go Netfilter.Accept rules rest
              | "DROP" -> go Netfilter.Drop rules rest
              | "REJECT" -> go Netfilter.Reject rules rest
              | _ -> Error (Printf.sprintf "unknown chain policy %s" v))
          | _ -> (
              match Netfilter.rule_of_spec line with
              | Ok r -> go policy (r :: rules) rest
              | Error e -> Error e))
  in
  go Netfilter.Accept [] lines
