(** Cross-source semantic lint over the declarative Protego policies.

    Complements the structural checks the parsers and {!Pfm.verify}
    already make: every check here is about what a policy {e means} — an
    entry that never takes effect, a grant wider than plausibly
    intended, two sources contradicting each other — and carries a
    stable finding code that tools and CI match on.  Codes are
    append-only.

    {2 Finding codes}

    Declarative checks:
    - [PL-M001] (warning) shadowed mount rule — an earlier first-match
      rule fires on every request this one would
    - [PL-M002] (error) user-mountable filesystem without [nosuid]
    - [PL-M003] (warning) user-mountable filesystem without [nodev]
    - [PL-M004] (warning) mount target shadows a system path
    - [PL-B001] (error) duplicate bind-map (port, proto)
    - [PL-B002] (warning) one port mapped to different binaries
    - [PL-B003] (warning) bind-map port outside the privileged range
    - [PL-S001] (warning) delegation cycle between non-root users
    - [PL-S002] (error) non-root unrestricted NOPASSWD rule
    - [PL-S003] (warning) SETENV on an unrestricted rule
    - [PL-S004] (warning) rule names an unknown user/group (needs accounts)
    - [PL-N001] (error) netfilter rule unreachable, conflicting target
    - [PL-N002] (warning) netfilter rule redundant
    - [PL-P001] (warning) duplicate ppp [allow-device]
    - [PL-P002] (warning) ppp [allow-device] not under [/dev]
    - [PL-X001] (warning) port both bind-mapped and netfilter-blocked
    - [PL-X002] (warning) bind-map owner uid matches no account (needs
      accounts)
    - [PL-PH001] (error) a phase guard that is not downward closed —
      the rule activates {e later} in the one-way lifecycle, a loosening
      the tighten-only phase model forbids (any source that accepts
      guards: mounts, binds, delegation, ppp).  The absence of PL-PH001
      findings is the tighten-only proof obligation of DESIGN.md §11.

    Facts proved on the compiled bytecode by {!Pfm_absint} (definite,
    by its soundness argument):
    - [PFM-DEAD] (warning) a rule's compiled code is (partly)
      unreachable — shadowed at the bytecode level
    - [PFM-PHASE-DEAD] (warning) a rule's guard makes it active in some
      phase, but in that phase's residual program its code is
      unreachable — shadowed by earlier rules active in the same phase
      (the whole-program PFM-DEAD cannot see this: the code is reachable
      via another phase)
    - [PFM-NEVER-ALLOW] (warning) the program cannot allow anything
      despite having rules
    - [PFM-ALWAYS-ALLOW] (error) the program allows everything despite
      having rules
    - [PFM-CONST-BRANCH] (info) a conditional whose outcome is decided
      before it runs *)

module Pfm = Protego_filter.Pfm
module Pfm_compile = Protego_filter.Pfm_compile
module Bindconf = Protego_policy.Bindconf
module Sudoers = Protego_policy.Sudoers
module Pppopts = Protego_policy.Pppopts
module Netfilter = Protego_net.Netfilter

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_rank : severity -> int

type finding = {
  code : string;
  severity : severity;
  source : string;
      (** ["mounts"], ["binds"], ["delegation"], ["netfilter:<chain>"],
          ["ppp"] or ["cross"] *)
  locus : string;   (** rule/entry identification within the source *)
  message : string;
}

val finding_to_string : finding -> string
(** One line: [<code> <severity> <source> (<locus>): <message>] — the
    golden-test and CLI format. *)

(** Account database, for the checks that need name resolution; pass
    {!no_accounts} to skip them. *)
type accounts = {
  user_names : (string * int) list;  (** (name, uid) *)
  group_names : string list;
}

val no_accounts : accounts

type input = {
  mounts : Pfm_compile.mount_rule list;
  binds : Bindconf.entry list;
  delegation : Sudoers.t;
  accounts : accounts;
  ppp : Pppopts.t option;
  chains : (string * Netfilter.rule list * Netfilter.verdict) list;
}

val empty_input : input

val lint : input -> finding list
(** All checks over all provided sources, including compiling each
    source and running the abstract-interpretation checks on the result.
    Finding order is deterministic: by source in input order, then by
    rule position. *)

(** {2 Per-source entry points} (used by tests and the CLI) *)

val lint_mounts : Pfm_compile.mount_rule list -> finding list
val lint_binds : Bindconf.entry list -> finding list
val lint_delegation : Sudoers.t -> accounts -> finding list
val lint_chain :
  string -> Netfilter.rule list -> Netfilter.verdict -> finding list
val lint_ppp : Pppopts.t -> finding list

val lint_program :
  source:string -> ?notes:(int * string) list -> ?entries:int ->
  Pfm.program -> finding list
(** The PFM-* checks on one compiled program.  [notes] attributes
    findings to declarative rules; [entries] is the number of rules the
    program was compiled from — the verdict-shape checks
    (NEVER/ALWAYS-ALLOW) are suppressed when it is [0], because an empty
    whitelist compiles to deny-all and an empty chain to its policy
    verdict by design. *)

(** {2 Reporting} *)

val max_severity : finding list -> severity option
val has_errors : finding list -> bool

val render : finding list -> string
(** One finding per line plus a summary line; ["no findings\n"] when
    clean. *)

val parse_chain :
  string -> (Netfilter.rule list * Netfilter.verdict, string) result
(** Parse a chain file: rule specs one per line
    (see {!Netfilter.rule_of_spec}), plus an optional
    [policy ACCEPT|DROP|REJECT] line (default [ACCEPT]); [#] comments
    and blank lines ignored. *)

val sensitive_prefixes : string list
(** System paths PL-M004 protects against being shadowed by a mount
    target — shared with the policy synthesizer's admissibility check. *)

val path_under : string -> string -> bool
(** [path_under prefix p]: [p] is [prefix] or lies strictly under it. *)
