(* Symbolic product-execution equivalence prover for PFM programs.

   A product node is a pair of program counters (one per program); the
   state attached to a node is a constraint store over the *shared*
   context fields plus the accumulator-aliasing registers of both
   programs.  Verified programs only jump forward, so pc1 + pc2 is a
   strictly increasing measure and the worklist can be drained in
   ascending (sum, pc1, pc2) order: every predecessor of a node is
   fully processed before the node is popped, which lets us keep a
   bounded disjunct list per node and join only when the bound
   overflows.

   The store extends Pfm_absint's iv/sv base values with exact literal
   lists: excluded ranges, forced / forbidden masked-bit facts, and
   required / forbidden string prefixes.  Masked facts are *never*
   converted to ranges: context ints can be min_int (packet contexts
   encode absent ports that way), and e.g. min_int land m = 0
   satisfies Masked_eq {mask = m; value = 0} while sitting far outside
   [0; lnot m] — a range encoding would let the prover claim Equal
   wrongly.  All membership checks against the literal lists are
   exact, so emptiness detection errs only toward keeping a state. *)

module Pfm = Protego_filter.Pfm
module A = Pfm_absint

type counterexample = {
  cx_ctx : Pfm.ctx;
  cx_left : Pfm.verdict;
  cx_right : Pfm.verdict;
}

type result = Equal | Not_equal of counterexample | Unknown of string

let verdict_name = function
  | Pfm.Allow -> "allow"
  | Pfm.Deny -> "deny"
  | Pfm.Reject -> "reject"

let has_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

(* ------------------------------------------------------------------ *)
(* Per-field constraints                                              *)
(* ------------------------------------------------------------------ *)

type icon = {
  ib : A.iv;
  nranges : (int * int) list;   (* x not in [lo; hi] *)
  mmask : int;                  (* x land mmask = mval; mmask = 0: none *)
  mval : int;
  mneg : (int * int) list;      (* x land m <> v *)
}

type scon = {
  sb : A.sv;
  pre : string;                 (* required prefix; "" = unconstrained *)
  npre : string list;           (* forbidden prefixes *)
}

let icon_top =
  { ib = A.Irange (min_int, max_int); nranges = []; mmask = 0; mval = 0;
    mneg = [] }

let scon_top = { sb = A.Snot A.SSet.empty; pre = ""; npre = [] }

let iv_mem v = function
  | A.Ibot -> false
  | A.Iset s -> A.ISet.mem v s
  | A.Irange (lo, hi) -> v >= lo && v <= hi
  | A.Inot s -> not (A.ISet.mem v s)

let sv_mem s = function
  | A.Sbot -> false
  | A.Sset ss -> A.SSet.mem s ss
  | A.Snot ss -> not (A.SSet.mem s ss)

(* Exact check of the literal lists alone (everything but [ib]). *)
let icon_lits_mem c v =
  List.for_all (fun (lo, hi) -> v < lo || v > hi) c.nranges
  && v land c.mmask = c.mval
  && List.for_all (fun (m, x) -> v land m <> x) c.mneg

let icon_mem c v = iv_mem v c.ib && icon_lits_mem c v

let scon_mem c s =
  sv_mem s c.sb
  && has_prefix ~prefix:c.pre s
  && List.for_all (fun p -> not (has_prefix ~prefix:p s)) c.npre

(* Emptiness-aware normalization.  None = definitely no concrete value
   satisfies the constraint.  Small ranges collapse to exact sets. *)
let norm_icon c =
  let mneg_forced () =
    List.exists (fun (m, v) -> m land c.mmask = m && c.mval land m = v)
      c.mneg
  in
  match c.ib with
  | A.Ibot -> None
  | A.Iset s ->
      let s' = A.ISet.filter (icon_lits_mem c) s in
      if A.ISet.is_empty s' then None else Some { c with ib = A.Iset s' }
  | A.Irange (lo, hi) when lo > hi -> None
  | A.Irange (lo, hi) when hi - lo >= 0 && hi - lo <= 48 ->
      let s = ref A.ISet.empty in
      for k = 0 to hi - lo do
        let v = lo + k in
        if icon_lits_mem c v then s := A.ISet.add v !s
      done;
      if A.ISet.is_empty !s then None else Some { c with ib = A.Iset !s }
  | A.Irange (lo, hi) ->
      if List.exists (fun (a, b) -> a <= lo && hi <= b) c.nranges then None
      else if mneg_forced () then None
      else begin
        (* shave unsatisfiable endpoints, bounded *)
        let lo' =
          let x = ref lo and b = ref 64 in
          while !b > 0 && !x < hi && not (icon_lits_mem c !x) do
            incr x; decr b
          done;
          !x
        in
        let hi' =
          let x = ref hi and b = ref 64 in
          while !b > 0 && !x > lo' && not (icon_lits_mem c !x) do
            decr x; decr b
          done;
          !x
        in
        if lo' = hi' then
          if icon_lits_mem c lo' then
            Some { c with ib = A.Iset (A.ISet.singleton lo') }
          else None
        else Some { c with ib = A.Irange (lo', hi') }
      end
  | A.Inot _ -> if mneg_forced () then None else Some c

let norm_scon c =
  (* every value has prefix c.pre; a forbidden prefix of c.pre (or "")
     therefore empties the constraint *)
  if List.exists (fun p -> has_prefix ~prefix:p c.pre) c.npre then None
  else
    match c.sb with
    | A.Sbot -> None
    | A.Sset ss ->
        let ss' = A.SSet.filter (scon_mem { c with sb = A.Snot A.SSet.empty }) ss in
        if A.SSet.is_empty ss' then None else Some { c with sb = A.Sset ss' }
    | A.Snot _ -> Some c

let add_mpos c m v =
  let v = v land m in
  let common = c.mmask land m in
  if c.mval land common <> v land common then None
  else norm_icon { c with mmask = c.mmask lor m; mval = c.mval lor v }

let icon_meet a b =
  let c =
    { ib = A.imeet a.ib b.ib;
      nranges = List.sort_uniq compare (a.nranges @ b.nranges);
      mmask = a.mmask; mval = a.mval;
      mneg = List.sort_uniq compare (a.mneg @ b.mneg) }
  in
  match norm_icon c with
  | None -> None
  | Some c -> if b.mmask = 0 then Some c else add_mpos c b.mmask b.mval

let icon_singleton c =
  match c.ib with
  | A.Iset s when A.ISet.cardinal s = 1 -> Some (A.ISet.choose s)
  | A.Irange (lo, hi) when lo = hi -> Some lo
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Product state                                                      *)
(* ------------------------------------------------------------------ *)

type pstate = {
  fi : icon array;
  fs : scon array;
  a1i : int; a1s : int;   (* field aliased by each accumulator; -1 unknown *)
  a2i : int; a2s : int;
  eq_pos : (int * int) list;   (* ints.(a) = ints.(b), a < b *)
  eq_neg : (int * int) list;
}

let set_fi st f c =
  let fi = Array.copy st.fi in
  fi.(f) <- c;
  { st with fi }

let set_fs st f c =
  let fs = Array.copy st.fs in
  fs.(f) <- c;
  { st with fs }

(* Re-meet equal fields a few rounds; detect eq_neg contradictions. *)
let propagate_eqs st =
  let rec go st n =
    if n = 0 then Some st
    else begin
      let bot = ref false in
      let fi = Array.copy st.fi in
      List.iter
        (fun (a, b) ->
          if not !bot then
            match icon_meet fi.(a) fi.(b) with
            | None -> bot := true
            | Some m -> fi.(a) <- m; fi.(b) <- m)
        st.eq_pos;
      if !bot then None
      else
        let st = { st with fi } in
        let neg_hit =
          List.exists
            (fun (a, b) ->
              match icon_singleton st.fi.(a), icon_singleton st.fi.(b) with
              | Some x, Some y -> x = y
              | _ -> false)
            st.eq_neg
        in
        if neg_hit then None else go st (n - 1)
    end
  in
  go st (if st.eq_pos = [] then 1 else 3)

let finish_int st f c_opt =
  match c_opt with
  | None -> None
  | Some c ->
      let st = set_fi st f c in
      if st.eq_pos = [] && st.eq_neg = [] then Some st else propagate_eqs st

let refine_int_cond st f cond pol =
  let c = st.fi.(f) in
  let meet_iv iv = norm_icon { c with ib = A.imeet c.ib iv } in
  (* Negative facts must ALSO land in [nranges]: [A.imeet] of a range
     with [Inot] can only shave endpoints, so an interior hole (port <>
     40000 inside [min;max]) silently evaporates from [ib] alone, and
     the prover would later accept port = 40000 again. *)
  let exclude lo hi iv =
    finish_int st f
      (norm_icon
         { c with
           ib = A.imeet c.ib iv;
           nranges = List.sort_uniq compare ((lo, hi) :: c.nranges) })
  in
  match cond, pol with
  | Pfm.Eq n, true -> finish_int st f (meet_iv (A.Iset (A.ISet.singleton n)))
  | Pfm.Eq n, false -> exclude n n (A.Inot (A.ISet.singleton n))
  | Pfm.Ge n, true -> finish_int st f (meet_iv (A.Irange (n, max_int)))
  | Pfm.Ge n, false ->
      if n = min_int then None
      else finish_int st f (meet_iv (A.Irange (min_int, n - 1)))
  | Pfm.Le n, true -> finish_int st f (meet_iv (A.Irange (min_int, n)))
  | Pfm.Le n, false ->
      if n = max_int then None
      else finish_int st f (meet_iv (A.Irange (n + 1, max_int)))
  | Pfm.In_range (lo, hi), true ->
      if lo > hi then None else finish_int st f (meet_iv (A.Irange (lo, hi)))
  | Pfm.In_range (lo, hi), false ->
      if lo > hi then Some st
      else if hi - lo >= 0 && hi - lo <= 48 then begin
        let s = ref A.ISet.empty in
        for k = 0 to hi - lo do s := A.ISet.add (lo + k) !s done;
        exclude lo hi (A.Inot !s)
      end
      else
        finish_int st f
          (norm_icon
             { c with nranges = List.sort_uniq compare ((lo, hi) :: c.nranges) })
  | Pfm.All_bits m, true ->
      if m = 0 then Some st else finish_int st f (add_mpos c m m)
  | Pfm.All_bits m, false ->
      if m = 0 then None
      else
        finish_int st f
          (norm_icon { c with mneg = List.sort_uniq compare ((m, m) :: c.mneg) })
  | Pfm.Masked_eq { mask; value }, true ->
      if mask = 0 then (if value = 0 then Some st else None)
      else if value land lnot mask <> 0 then None
      else finish_int st f (add_mpos c mask value)
  | Pfm.Masked_eq { mask; value }, false ->
      if mask = 0 then (if value = 0 then None else Some st)
      else if value land lnot mask <> 0 then Some st
      else
        finish_int st f
          (norm_icon
             { c with mneg = List.sort_uniq compare ((mask, value) :: c.mneg) })
  | (Pfm.Eq_field _ | Pfm.Str_eq _ | Pfm.Str_prefix _), _ -> assert false

let refine_eq_field st fa fb pol =
  if fa = fb then (if pol then Some st else None)
  else
    let key = if fa < fb then (fa, fb) else (fb, fa) in
    if pol then
      if List.mem key st.eq_neg then None
      else
        match icon_meet st.fi.(fa) st.fi.(fb) with
        | None -> None
        | Some m ->
            let fi = Array.copy st.fi in
            fi.(fa) <- m;
            fi.(fb) <- m;
            let eq_pos =
              if List.mem key st.eq_pos then st.eq_pos else key :: st.eq_pos
            in
            propagate_eqs { st with fi; eq_pos }
    else if List.mem key st.eq_pos then None
    else
      let st' =
        { st with
          eq_neg =
            (if List.mem key st.eq_neg then st.eq_neg else key :: st.eq_neg) }
      in
      (match icon_singleton st'.fi.(fa), icon_singleton st'.fi.(fb) with
       | Some x, Some y when x = y -> None
       | _ -> Some st')

let refine_str_cond st f cond pol =
  let c = st.fs.(f) in
  let fin c_opt =
    match c_opt with None -> None | Some c' -> Some (set_fs st f c')
  in
  match cond, pol with
  | Pfm.Str_eq s, true ->
      fin (norm_scon { c with sb = A.smeet c.sb (A.Sset (A.SSet.singleton s)) })
  | Pfm.Str_eq s, false ->
      fin (norm_scon { c with sb = A.smeet c.sb (A.Snot (A.SSet.singleton s)) })
  | Pfm.Str_prefix p, true ->
      if has_prefix ~prefix:c.pre p then fin (norm_scon { c with pre = p })
      else if has_prefix ~prefix:p c.pre then fin (norm_scon c)
      else None
  | Pfm.Str_prefix p, false ->
      if p = "" then None
      else
        fin
          (norm_scon
             { c with npre = (if List.mem p c.npre then c.npre else p :: c.npre) })
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Join (used only when a node's disjunct list overflows)             *)
(* ------------------------------------------------------------------ *)

let icon_join a b =
  let inter l1 l2 = List.filter (fun x -> List.mem x l2) l1 in
  let mmask = a.mmask land b.mmask land lnot (a.mval lxor b.mval) in
  { ib = A.ijoin a.ib b.ib;
    nranges = inter a.nranges b.nranges;
    mmask;
    mval = a.mval land mmask;
    mneg = inter a.mneg b.mneg }

let scon_join a b =
  let lcp x y =
    let n = min (String.length x) (String.length y) in
    let i = ref 0 in
    while !i < n && x.[!i] = y.[!i] do incr i done;
    String.sub x 0 !i
  in
  { sb = A.sjoin a.sb b.sb;
    pre = lcp a.pre b.pre;
    npre = List.filter (fun p -> List.mem p b.npre) a.npre }

let pstate_join a b =
  { fi = Array.init (Array.length a.fi) (fun i -> icon_join a.fi.(i) b.fi.(i));
    fs = Array.init (Array.length a.fs) (fun i -> scon_join a.fs.(i) b.fs.(i));
    a1i = (if a.a1i = b.a1i then a.a1i else -1);
    a1s = (if a.a1s = b.a1s then a.a1s else -1);
    a2i = (if a.a2i = b.a2i then a.a2i else -1);
    a2s = (if a.a2s = b.a2s then a.a2s else -1);
    eq_pos = List.filter (fun k -> List.mem k b.eq_pos) a.eq_pos;
    eq_neg = List.filter (fun k -> List.mem k b.eq_neg) a.eq_neg }

(* ------------------------------------------------------------------ *)
(* Witness materialization                                            *)
(* ------------------------------------------------------------------ *)

let int_candidates c =
  let push acc v = if icon_mem c v && not (List.mem v acc) then v :: acc else acc in
  let acc = List.fold_left push [] [ 0; 1; min_int; max_int; c.mval ] in
  let acc =
    match c.ib with
    | A.Ibot -> []
    | A.Iset s -> A.ISet.fold (fun v acc -> push acc v) s acc
    | A.Irange (lo, hi) ->
        let acc = push (push acc lo) hi in
        let acc =
          List.fold_left
            (fun acc (a, b) ->
              let acc = if a > min_int then push acc (a - 1) else acc in
              if b < max_int then push acc (b + 1) else acc)
            acc c.nranges
        in
        let acc = push acc (c.mval lor (lo land lnot c.mmask)) in
        let rec probe acc k =
          if k > 48 || (hi - lo >= 0 && k > hi - lo) then acc
          else probe (push acc (lo + k)) (k + 1)
        in
        if hi - lo >= 0 && hi - lo <= 48 then probe acc 0 else probe acc 1
    | A.Inot _ ->
        let rec probe acc k = if k > 64 then acc else probe (push acc k) (k + 1) in
        let acc = probe acc 2 in
        List.fold_left
          (fun acc (m, _) ->
            let free = m land lnot c.mmask in
            if free = 0 then acc else push acc (c.mval lor (free land -free)))
          acc c.mneg
  in
  List.rev acc

let str_candidates c =
  let ok s = scon_mem c s in
  let uniq l =
    List.rev
      (List.fold_left
         (fun acc s -> if ok s && not (List.mem s acc) then s :: acc else acc)
         [] l)
  in
  match c.sb with
  | A.Sbot -> []
  | A.Sset ss -> uniq (A.SSet.elements ss)
  | A.Snot ss ->
      let base =
        [ c.pre; c.pre ^ "a"; c.pre ^ "b"; c.pre ^ "c"; c.pre ^ "0";
          c.pre ^ "zz"; c.pre ^ "/x" ]
      in
      let dodged = A.SSet.fold (fun s acc -> (s ^ "~") :: acc) ss [] in
      uniq (base @ dodged)

(* Build candidate contexts for one abstractly-divergent state: a
   primary greedy pick plus single-field alternates.  Every returned
   context satisfies the exact per-field constraints; the caller still
   replays it through Pfm.eval before believing anything. *)
let materialize ni ns st =
  let icands = Array.init ni (fun f -> int_candidates st.fi.(f)) in
  let scands = Array.init ns (fun f -> str_candidates st.fs.(f)) in
  if Array.exists (fun l -> l = []) icands || Array.exists (fun l -> l = []) scands
  then []
  else begin
    let ints = Array.map List.hd icands in
    let strs = Array.map List.hd scands in
    let ok = ref true in
    List.iter
      (fun (a, b) ->
        if !ok && ints.(a) <> ints.(b) then
          match List.find_opt (fun v -> List.mem v icands.(b)) icands.(a) with
          | Some v -> ints.(a) <- v; ints.(b) <- v
          | None -> ok := false)
      st.eq_pos;
    List.iter
      (fun (a, b) ->
        if !ok && ints.(a) = ints.(b) then
          match List.find_opt (fun v -> v <> ints.(a)) icands.(b) with
          | Some v -> ints.(b) <- v
          | None -> (
              match List.find_opt (fun v -> v <> ints.(b)) icands.(a) with
              | Some v -> ints.(a) <- v
              | None -> ok := false))
      st.eq_neg;
    if not !ok then []
    else begin
      let primary = { Pfm.ints; strs } in
      let out = ref [ primary ] in
      Array.iteri
        (fun f cands ->
          List.iteri
            (fun i v ->
              if i >= 1 && i <= 3 && v <> ints.(f) then begin
                let ints' = Array.copy ints in
                ints'.(f) <- v;
                out := { Pfm.ints = ints'; strs } :: !out
              end)
            cands)
        icands;
      Array.iteri
        (fun f cands ->
          List.iteri
            (fun i s ->
              if i >= 1 && i <= 2 && s <> strs.(f) then begin
                let strs' = Array.copy strs in
                strs'.(f) <- s;
                out := { Pfm.ints; strs = strs' } :: !out
              end)
            cands)
        scands;
      List.rev !out
    end
  end

(* Debug dump of a constraint store, behind PFM_EQUIV_DEBUG. *)
let debug_enabled =
  match Sys.getenv_opt "PFM_EQUIV_DEBUG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let iv_str = function
  | A.Ibot -> "bot"
  | A.Iset s ->
      "{" ^ String.concat "," (List.map string_of_int (A.ISet.elements s)) ^ "}"
  | A.Irange (lo, hi) ->
      Printf.sprintf "[%s;%s]"
        (if lo = min_int then "min" else string_of_int lo)
        (if hi = max_int then "max" else string_of_int hi)
  | A.Inot s ->
      "!{" ^ String.concat "," (List.map string_of_int (A.ISet.elements s)) ^ "}"

let sv_str = function
  | A.Sbot -> "bot"
  | A.Sset s -> "{" ^ String.concat "," (A.SSet.elements s) ^ "}"
  | A.Snot s -> "!{" ^ String.concat "," (A.SSet.elements s) ^ "}"

let icon_str c =
  Printf.sprintf "%s nr=[%s] m=(%x,%x) mneg=[%s]" (iv_str c.ib)
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "%d..%d" a b) c.nranges))
    c.mmask c.mval
    (String.concat ";"
       (List.map (fun (m, v) -> Printf.sprintf "%x<>%x" m v) c.mneg))

let scon_str c =
  Printf.sprintf "%s pre=%S npre=[%s]" (sv_str c.sb) c.pre
    (String.concat ";" (List.map (Printf.sprintf "%S") c.npre))

let debug_state st =
  Array.iteri (fun i c -> Printf.eprintf "    i%d: %s\n" i (icon_str c)) st.fi;
  Array.iteri (fun i c -> Printf.eprintf "    s%d: %s\n" i (scon_str c)) st.fs;
  Printf.eprintf "    a1i=%d a1s=%d a2i=%d a2s=%d eq+=%d eq-=%d\n%!" st.a1i
    st.a1s st.a2i st.a2s (List.length st.eq_pos) (List.length st.eq_neg)

(* Replay copies: fresh counters so proving never perturbs the live
   profile of the programs under test. *)
let quiet (p : Pfm.program) =
  { p with
    Pfm.counters = Array.make (Array.length p.Pfm.counters) 0;
    retired = 0 }

(* ------------------------------------------------------------------ *)
(* The product engine                                                 *)
(* ------------------------------------------------------------------ *)

type side = Left | Right

(* --- identical-suffix cut ------------------------------------------- *)

(* Structural instruction equality; switch tables compare by bindings.
   Offsets are relative and forward-only, so equal instruction suffixes
   denote the same computation. *)
let insn_equal i1 i2 =
  let tbl_equal fold find t1 t2 =
    Hashtbl.length t1 = Hashtbl.length t2
    && fold (fun k d acc -> acc && find t2 k = Some d) t1 true
  in
  match i1, i2 with
  | Pfm.Iswitch { tbl = t1; default = d1 }, Pfm.Iswitch { tbl = t2; default = d2 }
    ->
      d1 = d2 && tbl_equal Hashtbl.fold Hashtbl.find_opt t1 t2
  | Pfm.Sswitch { tbl = t1; default = d1 }, Pfm.Sswitch { tbl = t2; default = d2 }
    ->
      d1 = d2 && tbl_equal Hashtbl.fold Hashtbl.find_opt t1 t2
  | Pfm.Iswitch _, _ | Pfm.Sswitch _, _ -> false
  | _ -> i1 = i2

(* Per-pc accumulator live-in: does some path from [pc] read the int
   (resp. string) accumulator before reloading it?  Programs are
   forward-only, so one backward sweep suffices. *)
let acc_live (prog : Pfm.program) =
  let n = Array.length prog.Pfm.insns in
  let li = Array.make n false and ls = Array.make n false in
  let cond_uses = function
    | Pfm.Str_eq _ | Pfm.Str_prefix _ -> (false, true)
    | Pfm.Eq _ | Pfm.Ge _ | Pfm.Le _ | Pfm.In_range _ | Pfm.All_bits _
    | Pfm.Masked_eq _ | Pfm.Eq_field _ -> (true, false)
  in
  for pc = n - 1 downto 0 do
    match prog.Pfm.insns.(pc) with
    | Pfm.Ret _ -> ()
    | Pfm.Ld_int _ ->
        li.(pc) <- false;
        ls.(pc) <- ls.(pc + 1)
    | Pfm.Ld_str _ ->
        ls.(pc) <- false;
        li.(pc) <- li.(pc + 1)
    | Pfm.Jmp d ->
        li.(pc) <- li.(pc + 1 + d);
        ls.(pc) <- ls.(pc + 1 + d)
    | Pfm.Jif (cond, jt, jf) ->
        let ui, us = cond_uses cond in
        li.(pc) <- ui || li.(pc + 1 + jt) || li.(pc + 1 + jf);
        ls.(pc) <- us || ls.(pc + 1 + jt) || ls.(pc + 1 + jf)
    | Pfm.Iswitch { tbl; default } ->
        li.(pc) <- true;
        ls.(pc) <-
          Hashtbl.fold (fun _ d acc -> acc || ls.(pc + 1 + d)) tbl
            ls.(pc + 1 + default)
    | Pfm.Sswitch { tbl; default } ->
        ls.(pc) <- true;
        li.(pc) <-
          Hashtbl.fold (fun _ d acc -> acc || li.(pc + 1 + d)) tbl
            li.(pc + 1 + default)
  done;
  (li, ls)

module Q = Set.Make (struct
  type t = int * int * int (* pc1 + pc2, pc1, pc2 *)
  let compare = compare
end)

let prove ?(max_disjuncts = 256) ?(max_nodes = 500_000) p q =
  if p == q then Equal
  else
    match Pfm.verify p, Pfm.verify q with
    | Error e, _ ->
        Unknown ("left program fails verify: " ^ Pfm.verify_error_to_string e)
    | _, Error e ->
        Unknown ("right program fails verify: " ^ Pfm.verify_error_to_string e)
    | Ok (), Ok () ->
        let ni = max p.Pfm.n_int_fields q.Pfm.n_int_fields in
        let ns = max p.Pfm.n_str_fields q.Pfm.n_str_fields in
        let top =
          { fi = Array.make ni icon_top; fs = Array.make ns scon_top;
            a1i = -1; a1s = -1; a2i = -1; a2s = -1; eq_pos = []; eq_neg = [] }
        in
        let len1 = Array.length p.Pfm.insns
        and len2 = Array.length q.Pfm.insns in
        (* Identical-suffix cut: when the remaining code of both sides
           is instruction-for-instruction the same (optimizer rewrites
           leave untouched regions identical), any input reaching this
           product state takes the same decisions on both sides — the
           pair has converged.  Without the cut, a rewritten region
           followed by a long shared tail makes the product walk every
           (left path x right path) combination of that tail, the
           disjunct bound overflows, and the join manufactures
           unprovable false divergences. *)
        let live2i, live2s = acc_live q in
        let suffix_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 251 in
        let rec suffix_eq pc1 pc2 =
          len1 - pc1 = len2 - pc2
          &&
          match Hashtbl.find_opt suffix_memo (pc1, pc2) with
          | Some r -> r
          | None ->
              (* break the cycle pessimistically; forward-only programs
                 cannot actually revisit (pc1, pc2) *)
              Hashtbl.add suffix_memo (pc1, pc2) false;
              let r =
                insn_equal p.Pfm.insns.(pc1) q.Pfm.insns.(pc2)
                && (pc1 + 1 >= len1 || suffix_eq (pc1 + 1) (pc2 + 1))
              in
              Hashtbl.replace suffix_memo (pc1, pc2) r;
              r
        in
        let converged_cut pc1 pc2 st =
          suffix_eq pc1 pc2
          && ((not live2i.(pc2)) || (st.a1i >= 0 && st.a1i = st.a2i))
          && ((not live2s.(pc2)) || (st.a1s >= 0 && st.a1s = st.a2s))
        in
        let pending : (int * int, pstate list ref) Hashtbl.t =
          Hashtbl.create 251
        in
        let queue = ref Q.empty in
        let divergent = ref [] in
        let processed = ref 0 in
        let budget_hit = ref false in
        let push (pc1, pc2) st =
          let cell =
            match Hashtbl.find_opt pending (pc1, pc2) with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add pending (pc1, pc2) r;
                queue := Q.add (pc1 + pc2, pc1, pc2) !queue;
                r
          in
          if List.length !cell >= max_disjuncts then begin
            if debug_enabled then
              Printf.eprintf "  OVERFLOW join at (%d,%d)\n%!" pc1 pc2;
            match !cell with
            | last :: rest -> cell := pstate_join last st :: rest
            | [] -> cell := [ st ]
          end
          else cell := st :: !cell
        in
        let refine_cond st ~ai ~asf cond pol =
          match cond with
          | Pfm.Eq _ | Pfm.Ge _ | Pfm.Le _ | Pfm.In_range _ | Pfm.All_bits _
          | Pfm.Masked_eq _ ->
              if ai < 0 then Some st else refine_int_cond st ai cond pol
          | Pfm.Eq_field f -> if ai < 0 then Some st else refine_eq_field st ai f pol
          | Pfm.Str_eq _ | Pfm.Str_prefix _ ->
              if asf < 0 then Some st else refine_str_cond st asf cond pol
        in
        let step_side side prog pc other_pc st =
          let ai, asf =
            match side with
            | Left -> st.a1i, st.a1s
            | Right -> st.a2i, st.a2s
          in
          let with_ai st f =
            match side with
            | Left -> { st with a1i = f }
            | Right -> { st with a2i = f }
          in
          let with_as st f =
            match side with
            | Left -> { st with a1s = f }
            | Right -> { st with a2s = f }
          in
          let mk pc' st =
            match side with
            | Left -> ((pc', other_pc), st)
            | Right -> ((other_pc, pc'), st)
          in
          match prog.Pfm.insns.(pc) with
          | Pfm.Ld_int f -> [ mk (pc + 1) (with_ai st f) ]
          | Pfm.Ld_str f -> [ mk (pc + 1) (with_as st f) ]
          | Pfm.Jmp d -> [ mk (pc + 1 + d) st ]
          | Pfm.Ret _ -> assert false
          | Pfm.Jif (cond, jt, jf) ->
              let branch pol tgt acc =
                match refine_cond st ~ai ~asf cond pol with
                | None -> acc
                | Some st' -> mk (pc + 1 + tgt) st' :: acc
              in
              branch true jt (branch false jf [])
          | Pfm.Iswitch { tbl; default } ->
              let keys =
                Hashtbl.fold (fun k _ acc -> A.ISet.add k acc) tbl A.ISet.empty
              in
              let cases =
                Hashtbl.fold
                  (fun k d acc ->
                    match refine_cond st ~ai ~asf (Pfm.Eq k) true with
                    | None -> acc
                    | Some st' -> mk (pc + 1 + d) st' :: acc)
                  tbl []
              in
              let def =
                if ai < 0 then Some (mk (pc + 1 + default) st)
                else
                  let c = st.fi.(ai) in
                  (* keys go into nranges too — see refine_int_cond on
                     why [imeet _ (Inot _)] alone loses interior holes *)
                  let nranges =
                    A.ISet.fold (fun k acc -> (k, k) :: acc) keys c.nranges
                    |> List.sort_uniq compare
                  in
                  match
                    finish_int st ai
                      (norm_icon
                         { c with ib = A.imeet c.ib (A.Inot keys); nranges })
                  with
                  | None -> None
                  | Some st' -> Some (mk (pc + 1 + default) st')
              in
              (match def with None -> cases | Some d -> d :: cases)
          | Pfm.Sswitch { tbl; default } ->
              let keys =
                Hashtbl.fold (fun k _ acc -> A.SSet.add k acc) tbl A.SSet.empty
              in
              let cases =
                Hashtbl.fold
                  (fun k d acc ->
                    match refine_cond st ~ai ~asf (Pfm.Str_eq k) true with
                    | None -> acc
                    | Some st' -> mk (pc + 1 + d) st' :: acc)
                  tbl []
              in
              let def =
                if asf < 0 then Some (mk (pc + 1 + default) st)
                else
                  let c = st.fs.(asf) in
                  match norm_scon { c with sb = A.smeet c.sb (A.Snot keys) } with
                  | None -> None
                  | Some c' -> Some (mk (pc + 1 + default) (set_fs st asf c'))
              in
              (match def with None -> cases | Some d -> d :: cases)
        in
        let nonbranching = function
          | Pfm.Ld_int _ | Pfm.Ld_str _ | Pfm.Jmp _ -> true
          | _ -> false
        in
        let is_switch = function
          | Pfm.Iswitch _ | Pfm.Sswitch _ -> true
          | _ -> false
        in
        push (0, 0) top;
        while (not (Q.is_empty !queue)) && not !budget_hit do
          let (_, pc1, pc2) as key = Q.min_elt !queue in
          queue := Q.remove key !queue;
          let states =
            match Hashtbl.find_opt pending (pc1, pc2) with
            | None -> []
            | Some r ->
                Hashtbl.remove pending (pc1, pc2);
                !r
          in
          List.iter
            (fun st ->
              if !processed >= max_nodes then budget_hit := true
              else if converged_cut pc1 pc2 st then ()
              else begin
                incr processed;
                if debug_enabled then begin
                  Printf.eprintf "node (%d,%d):\n" pc1 pc2;
                  debug_state st
                end;
                let i1 = p.Pfm.insns.(pc1) and i2 = q.Pfm.insns.(pc2) in
                match i1, i2 with
                | Pfm.Ret v1, Pfm.Ret v2 ->
                    if v1 <> v2 then begin
                      if debug_enabled then begin
                        Printf.eprintf "  divergent leaf (%d,%d): %s vs %s\n"
                          pc1 pc2 (verdict_name v1) (verdict_name v2);
                        debug_state st
                      end;
                      divergent := (v1, v2, st) :: !divergent
                    end
                | Pfm.Ret _, _ ->
                    List.iter (fun (k, s) -> push k s)
                      (step_side Right q pc2 pc1 st)
                | _, Pfm.Ret _ ->
                    List.iter (fun (k, s) -> push k s)
                      (step_side Left p pc1 pc2 st)
                | _ ->
                    (* Keep the two walks in rough lockstep: racing one
                       program to its leaves while the other waits at
                       its first branch piles up disjuncts whose join
                       forgets facts the waiting program still needs.
                       Switches go first — their case refinements are
                       singletons, and the other side then constant-
                       folds under each branch.  The tie-break steps
                       the side with MORE instructions remaining: that
                       drives every pair toward equal-remaining-length
                       alignment, which is exactly where the identical-
                       suffix cut can fire.  (Proportional-position
                       lockstep instead parks one side mid-region while
                       the other fans out through the shared tail, and
                       the disjunct joins destroy the facts that made
                       those path products infeasible.) *)
                    let step_left =
                      if nonbranching i1 then true
                      else if nonbranching i2 then false
                      else if is_switch i1 then true
                      else if is_switch i2 then false
                      else len1 - pc1 >= len2 - pc2
                    in
                    if step_left then
                      List.iter (fun (k, s) -> push k s)
                        (step_side Left p pc1 pc2 st)
                    else
                      List.iter (fun (k, s) -> push k s)
                        (step_side Right q pc2 pc1 st)
              end)
            states
        done;
        if !budget_hit then
          Unknown (Printf.sprintf "budget exhausted after %d states" !processed)
        else begin
          match List.rev !divergent with
          | [] -> Equal
          | divs ->
              let pq = quiet p and qq = quiet q in
              let replays = ref 0 in
              let rec try_divs = function
                | [] ->
                    Unknown
                      (Printf.sprintf
                         "%d abstractly-divergent paths, none concretized"
                         (List.length divs))
                | (_, _, st) :: rest ->
                    let rec try_ctxs = function
                      | [] -> try_divs rest
                      | ctx :: more ->
                          if !replays > 4096 then
                            Unknown
                              (Printf.sprintf
                                 "replay budget exhausted over %d divergent \
                                  paths"
                                 (List.length divs))
                          else begin
                            incr replays;
                            let v1 = Pfm.eval pq ctx
                            and v2 = Pfm.eval qq ctx in
                            if v1 <> v2 then
                              Not_equal
                                { cx_ctx = ctx; cx_left = v1; cx_right = v2 }
                            else try_ctxs more
                          end
                    in
                    try_ctxs (materialize ni ns st)
              in
              try_divs divs
        end

let result_to_string = function
  | Equal -> "equal"
  | Not_equal cx ->
      Printf.sprintf "not-equal (ints=[%s] strs=[%s] left=%s right=%s)"
        (String.concat ";"
           (Array.to_list (Array.map string_of_int cx.cx_ctx.Pfm.ints)))
        (String.concat ";"
           (Array.to_list
              (Array.map (Printf.sprintf "%S") cx.cx_ctx.Pfm.strs)))
        (verdict_name cx.cx_left) (verdict_name cx.cx_right)
  | Unknown m -> "unknown: " ^ m
