(** Symbolic equivalence prover for {!Pfm} programs.

    [prove p q] decides whether two {e verified} programs produce the
    same verdict on every context, by symbolically executing the {b
    product} of the two control-flow graphs: a product state is a pair
    of program counters plus one shared constraint store over the
    context fields (both programs read the same [ctx], so a branch
    refinement made while walking one program immediately constrains
    the paths still open in the other).  Verified programs only jump
    forward, so product nodes are explored in topological order with a
    bounded number of path disjuncts kept per node ([max_disjuncts]);
    beyond the bound, paths are joined — losing precision, never
    soundness.

    The constraint domain extends {!Pfm_absint}'s interval /
    constant-set / string-set lattice ([iv]/[sv] are reused as the
    base) with what equivalence proofs over compiled policies need and
    dead-code analysis does not: excluded ranges (negated
    [In_range]), forced and forbidden masked-bit literals
    ([Masked_eq]/[All_bits], the CIDR tests), required and forbidden
    string prefixes ([Str_prefix]), and inter-field
    equalities ([Eq_field]).

    {b Verdicts are three-valued and definite only on two of them:}

    - [Equal] is a {e proof}: every divergent product leaf (a pair of
      [Ret]s with different verdicts) was shown infeasible — its
      constraint store has a definitely-empty concretization.  Since
      every hook derives errno from the verdict alone
      ({!Pfm_dispatch}'s [deny_errno] is a function of hook and
      verdict), verdict equality implies (verdict, errno) equality.
    - [Not_equal cx] is a {e witness}: [cx.cx_ctx] was replayed
      through both programs with {!Pfm.eval} and really diverged —
      never a "trust me" verdict.  Replay happens on counter-isolated
      copies, so proving does not perturb the profile counters of live
      programs.
    - [Unknown] means the prover ran out of budget, or found an
      abstractly-feasible divergence it could not concretize.  Callers
      gating an optimization must treat [Unknown] as a rejection. *)

module Pfm = Protego_filter.Pfm

type counterexample = {
  cx_ctx : Pfm.ctx;          (** input on which the programs diverge *)
  cx_left : Pfm.verdict;     (** what the left program returns on it *)
  cx_right : Pfm.verdict;
}

type result =
  | Equal
  | Not_equal of counterexample
  | Unknown of string        (** reason: budget, or unconcretized paths *)

val prove :
  ?max_disjuncts:int -> ?max_nodes:int ->
  Pfm.program -> Pfm.program -> result
(** [max_disjuncts] (default 256) bounds the path disjuncts kept per
    product node before joining; [max_nodes] (default 500_000) bounds
    the total disjuncts processed.  Programs that fail {!Pfm.verify}
    yield [Unknown] (the prover's refinement rules assume the
    verifier's accumulator-initialization invariant).  The two
    programs may declare different arities; the witness context is as
    wide as the wider of the two. *)

val result_to_string : result -> string
(** ["equal"], ["not-equal (ints=[..] strs=[..] left=.. right=..)"] or
    ["unknown: <reason>"]. *)
