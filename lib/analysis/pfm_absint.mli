(** Forward abstract interpretation of {!Pfm} programs.

    Computes, in a single pass (verified programs jump forward only, so
    program order is topological and join doubles as the widening),
    per-instruction reachability and verdict reachability under an
    interval / constant-set domain for integer fields and a finite
    string-set domain for string fields.  Because the machine has no
    arithmetic, accumulators always alias context fields; the analysis
    tracks that aliasing so branch refinements persist across reloads —
    this is what exposes shadowed whitelist entries as dead code.

    {b Soundness}: the analysis {e over}-approximates reachability.
    Abstractly unreachable therefore means definitely dead;
    [never_allows]/[always_allows] are likewise definite.  The converse
    direction (abstractly reachable implies an input exists) does not
    hold and is never claimed.  The differential fuzz suite checks the
    sound direction against runtime instruction counters. *)

module Pfm = Protego_filter.Pfm

(** {1 Abstract values} (exposed for tests and diagnostics) *)

module ISet : Set.S with type elt = int
module SSet : Set.S with type elt = string

type iv =
  | Ibot                  (** no value (infeasible) *)
  | Iset of ISet.t        (** one of a finite set *)
  | Irange of int * int   (** inclusive interval *)
  | Inot of ISet.t        (** anything but a finite set; [Inot {}] is top *)

type sv = Sbot | Sset of SSet.t | Snot of SSet.t

val ijoin : iv -> iv -> iv
val imeet : iv -> iv -> iv
val sjoin : sv -> sv -> sv
val smeet : sv -> sv -> sv
val iv_to_string : iv -> string
val sv_to_string : sv -> string

(** Abstract machine state at a program point. *)
type state = {
  fi : iv array;
  fs : sv array;
  ai : iv;
  asv : sv;
  src_i : int option;     (** field the int accumulator aliases *)
  src_s : int option;
}

(** {1 Analysis} *)

type summary = {
  program : Pfm.program;
  reachable : bool array;
  state_at : state option array;
  allow_reachable : bool;
  deny_reachable : bool;
  reject_reachable : bool;
  const_branches : (int * bool) list;
      (** [Jif]s with exactly one feasible outcome: [(pc, outcome)] *)
}

val analyze : ?max_disjuncts:int -> Pfm.program -> summary
(** Total on any program; invalid (backward / out-of-range) edges are
    treated as absent, matching the verifier's flow pass.

    First-match compilation makes merge points disjunctive ("some
    earlier test failed"), so the analysis is path-sensitive up to
    [max_disjuncts] states per program point (default 64); beyond that
    it joins, losing precision but never soundness. *)

val verdict_reachable : summary -> Pfm.verdict -> bool

val never_allows : summary -> bool
(** Definite: no input makes the program return [Allow]. *)

val always_allows : summary -> bool
(** Definite: no input makes the program return [Deny] or [Reject]. *)

val dead_pcs : summary -> int list
val dead_ranges : summary -> (int * int) list
(** Maximal runs of consecutive unreachable slots, as inclusive
    [(first, last)] pairs. *)

(** {1 Provenance}

    The [(pc, text)] notes returned by the [Pfm_compile.*_notes]
    compilers mark where each declarative rule's code begins; a note's
    extent runs to the next note (or the program end). *)

val note_ranges : notes:(int * string) list -> int -> (int * int * string) list
(** Each note's inclusive extent [(first, last, text)] within a program
    of the given length. *)

val attribute : notes:(int * string) list -> int -> string option
(** The note owning [pc], if any. *)

val dead_notes : notes:(int * string) list -> summary -> (int * string) list
(** Rules whose {e every} instruction is unreachable — definitely dead
    under the soundness argument above.  [(start pc, rule text)]. *)

(** {1 Reports} *)

val pp_summary : Format.formatter -> summary -> unit
val summary_to_string : summary -> string
(** Disassembly annotated with reachability ([X] marks dead slots) and
    constant branches. *)
