(* Forward abstract interpretation of PFM programs.

   The machine has no arithmetic: every accumulator value is a verbatim
   copy of a context field, and every conditional compares the
   accumulator against immediates (or one other field).  The analysis
   therefore tracks one abstract value per *context field* and remembers
   which field each accumulator currently aliases, so a refinement
   learned on a branch ("source <> \"sda1\"") survives the accumulator
   being reloaded with a different field and back.  That aliasing is
   what makes shadowed whitelist entries — the same field re-tested with
   the same immediate further down — detectable as dead code.

   Jumps are forward-only in verified programs, so program order is a
   topological order of the CFG and a single pass with join at merge
   points reaches the fixpoint; there are no loops, hence no widening
   (join is the widen).  Invalid edges (backward or out of range) are
   simply not propagated, mirroring Pfm.verify_all's pass 2, so the
   analysis is total even on garbage programs.

   Soundness direction: every abstract transfer function and both
   branch-refinement operators OVER-approximate the concrete state sets,
   so the computed reachable set is a superset of the concretely
   reachable instructions.  Consequences clients rely on:
   - abstractly unreachable  =>  definitely dead (no input executes it);
   - Allow abstractly unreachable  =>  the program can never allow;
   - Deny and Reject abstractly unreachable  =>  the program always
     allows (verified programs terminate with some verdict);
   - a branch whose true (false) edge is abstractly infeasible is
     definitely constant.
   The converse never holds: abstract reachability does not imply an
   input exists, which is why the lint layer words those findings
   conservatively. *)

module Pfm = Protego_filter.Pfm
module ISet = Set.Make (Int)
module SSet = Set.Make (String)

(* --- abstract values ---------------------------------------------------- *)

type iv =
  | Ibot
  | Iset of ISet.t        (* value is one of these *)
  | Irange of int * int   (* lo <= value <= hi (inclusive) *)
  | Inot of ISet.t        (* value is anything but these; Inot {} = top *)

type sv =
  | Sbot
  | Sset of SSet.t
  | Snot of SSet.t        (* Snot {} = top *)

let itop = Inot ISet.empty
let stop = Snot SSet.empty

let inorm = function
  | Iset s when ISet.is_empty s -> Ibot
  | Irange (lo, hi) when lo > hi -> Ibot
  | v -> v

let snorm = function Sset s when SSet.is_empty s -> Sbot | v -> v

let iv_to_string = function
  | Ibot -> "⊥"
  | Iset s ->
      "{" ^ String.concat "," (List.map string_of_int (ISet.elements s)) ^ "}"
  | Irange (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi
  | Inot s when ISet.is_empty s -> "⊤"
  | Inot s ->
      "¬{" ^ String.concat "," (List.map string_of_int (ISet.elements s)) ^ "}"

let sv_to_string = function
  | Sbot -> "⊥"
  | Sset s ->
      "{"
      ^ String.concat "," (List.map (Printf.sprintf "%S") (SSet.elements s))
      ^ "}"
  | Snot s when SSet.is_empty s -> "⊤"
  | Snot s ->
      "¬{"
      ^ String.concat "," (List.map (Printf.sprintf "%S") (SSet.elements s))
      ^ "}"

let range_of_set s = (ISet.min_elt s, ISet.max_elt s)

let ijoin a b =
  match (a, b) with
  | Ibot, v | v, Ibot -> v
  | Iset x, Iset y -> Iset (ISet.union x y)
  | Iset x, Irange (lo, hi) | Irange (lo, hi), Iset x ->
      let slo, shi = range_of_set x in
      Irange (min lo slo, max hi shi)
  | Irange (a1, b1), Irange (a2, b2) -> Irange (min a1 a2, max b1 b2)
  | Inot x, Inot y -> Inot (ISet.inter x y)
  | Inot x, Iset y | Iset y, Inot x -> inorm (Inot (ISet.diff x y))
  | Inot x, Irange (lo, hi) | Irange (lo, hi), Inot x ->
      (* γ = ¬x ∪ [lo,hi]: only exclusions outside the range survive. *)
      Inot (ISet.filter (fun v -> v < lo || v > hi) x)

let ijoin a b = inorm (ijoin a b)

let sjoin a b =
  match (a, b) with
  | Sbot, v | v, Sbot -> v
  | Sset x, Sset y -> Sset (SSet.union x y)
  | Snot x, Snot y -> Snot (SSet.inter x y)
  | Snot x, Sset y | Sset y, Snot x -> Snot (SSet.diff x y)

let imeet a b =
  match (a, b) with
  | Ibot, _ | _, Ibot -> Ibot
  | Iset x, Iset y -> Iset (ISet.inter x y)
  | Iset x, Irange (lo, hi) | Irange (lo, hi), Iset x ->
      Iset (ISet.filter (fun v -> lo <= v && v <= hi) x)
  | Iset x, Inot y | Inot y, Iset x -> Iset (ISet.diff x y)
  | Irange (a1, b1), Irange (a2, b2) -> Irange (max a1 a2, min b1 b2)
  | Inot x, Inot y -> Inot (ISet.union x y)
  | Irange (lo, hi), Inot x | Inot x, Irange (lo, hi) ->
      (* Shave excluded endpoints off the range; interior holes are not
         representable, so they are (soundly) kept. *)
      let lo = ref lo and hi = ref hi in
      while !lo <= !hi && ISet.mem !lo x do incr lo done;
      while !hi >= !lo && ISet.mem !hi x do decr hi done;
      Irange (!lo, !hi)

let imeet a b = inorm (imeet a b)

let smeet a b =
  match (a, b) with
  | Sbot, _ | _, Sbot -> Sbot
  | Sset x, Sset y -> Sset (SSet.inter x y)
  | Sset x, Snot y | Snot y, Sset x -> Sset (SSet.diff x y)
  | Snot x, Snot y -> Snot (SSet.union x y)

let smeet a b = snorm (smeet a b)

let isingleton = function
  | Iset s when ISet.cardinal s = 1 -> Some (ISet.min_elt s)
  | Irange (lo, hi) when lo = hi -> Some lo
  | _ -> None

(* --- branch refinement -------------------------------------------------- *)

(* [irefine v c taken] over-approximates { x ∈ γ(v) | eval c x = taken }.
   A finite set is filtered exactly through the concrete semantics; the
   other shapes intersect with whatever the condition's outcome can be
   expressed as, or stay put.  Eq_field is handled by the caller (it
   relates two fields, not a field and an immediate). *)
let concrete_int_cond c x =
  match c with
  | Pfm.Eq imm -> x = imm
  | Pfm.Ge imm -> x >= imm
  | Pfm.Le imm -> x <= imm
  | Pfm.In_range (lo, hi) -> x >= lo && x <= hi
  | Pfm.All_bits imm -> x land imm = imm
  | Pfm.Masked_eq { mask; value } -> x land mask = value
  | Pfm.Eq_field _ | Pfm.Str_eq _ | Pfm.Str_prefix _ -> assert false

let irefine v c taken =
  match v with
  | Ibot -> Ibot
  | Iset s -> inorm (Iset (ISet.filter (fun x -> concrete_int_cond c x = taken) s))
  | (Irange _ | Inot _) as v -> (
      match (c, taken) with
      | Pfm.Eq imm, true -> imeet v (Iset (ISet.singleton imm))
      | Pfm.Eq imm, false -> imeet v (Inot (ISet.singleton imm))
      | Pfm.Ge imm, true -> imeet v (Irange (imm, max_int))
      | Pfm.Ge imm, false -> imeet v (Irange (min_int, imm - 1))
      | Pfm.Le imm, true -> imeet v (Irange (min_int, imm))
      | Pfm.Le imm, false -> imeet v (Irange (imm + 1, max_int))
      | Pfm.In_range (lo, hi), true -> imeet v (Irange (lo, hi))
      | Pfm.In_range (lo, hi), false ->
          (* ¬[lo,hi] is two rays; representable only when one is empty.
             A narrow interval (the common compiled port-range test) can
             be excluded pointwise instead. *)
          if lo = min_int then imeet v (Irange (hi + 1, max_int))
          else if hi = max_int then imeet v (Irange (min_int, lo - 1))
          else if hi - lo >= 0 && hi - lo < 64 then
            imeet v
              (Inot (ISet.of_list (List.init (hi - lo + 1) (fun i -> lo + i))))
          else v
      | Pfm.All_bits imm, true when imm <> 0 ->
          (* x ⊇ imm implies x >= imm for non-negative x; too weak to
             bother with.  The one exact fact: imm = 0 is always true. *)
          v
      | Pfm.All_bits 0, false -> Ibot
      | Pfm.All_bits _, _ -> v
      | Pfm.Masked_eq { mask = 0; value }, taken ->
          if (0 = value) = taken then v else Ibot
      | Pfm.Masked_eq _, _ -> v
      | (Pfm.Eq_field _ | Pfm.Str_eq _ | Pfm.Str_prefix _), _ -> v)

let srefine v c taken =
  match v with
  | Sbot -> Sbot
  | Sset s ->
      let keep x =
        match c with
        | Pfm.Str_eq imm -> String.equal x imm = taken
        | Pfm.Str_prefix p ->
            (String.length x >= String.length p
            && String.sub x 0 (String.length p) = p)
            = taken
        | _ -> true
      in
      snorm (Sset (SSet.filter keep s))
  | Snot _ as v -> (
      match (c, taken) with
      | Pfm.Str_eq imm, true -> smeet v (Sset (SSet.singleton imm))
      | Pfm.Str_eq imm, false -> smeet v (Snot (SSet.singleton imm))
      | Pfm.Str_prefix "", false -> Sbot  (* "" prefixes everything *)
      | _ -> v)

(* --- abstract machine state --------------------------------------------- *)

type state = {
  fi : iv array;          (* one abstract value per int context field *)
  fs : sv array;
  ai : iv;                (* int accumulator (kept in sync with its alias) *)
  asv : sv;
  src_i : int option;     (* field the int accumulator is a copy of *)
  src_s : int option;
}

let join_state a b =
  {
    fi = Array.map2 ijoin a.fi b.fi;
    fs = Array.map2 sjoin a.fs b.fs;
    ai = ijoin a.ai b.ai;
    asv = sjoin a.asv b.asv;
    src_i = (if a.src_i = b.src_i then a.src_i else None);
    src_s = (if a.src_s = b.src_s then a.src_s else None);
  }

(* Write a refined accumulator value back, mirroring into the aliased
   field so later reloads of that field see the refinement. *)
let with_ai st v =
  let fi =
    match st.src_i with
    | Some f ->
        let fi = Array.copy st.fi in
        fi.(f) <- v;
        fi
    | None -> st.fi
  in
  { st with ai = v; fi }

let with_asv st v =
  let fs =
    match st.src_s with
    | Some f ->
        let fs = Array.copy st.fs in
        fs.(f) <- v;
        fs
    | None -> st.fs
  in
  { st with asv = v; fs }

(* --- analysis results --------------------------------------------------- *)

type summary = {
  program : Pfm.program;
  reachable : bool array;
  state_at : state option array;  (* joined state on entry to each slot *)
  allow_reachable : bool;
  deny_reachable : bool;
  reject_reachable : bool;
  const_branches : (int * bool) list;
      (* (pc of a Jif, the only feasible outcome), pc order *)
}

let verdict_reachable s = function
  | Pfm.Allow -> s.allow_reachable
  | Pfm.Deny -> s.deny_reachable
  | Pfm.Reject -> s.reject_reachable

let never_allows s = not s.allow_reachable
let always_allows s = not (s.deny_reachable || s.reject_reachable)

let dead_pcs s =
  let acc = ref [] in
  Array.iteri (fun pc r -> if not r then acc := pc :: !acc) s.reachable;
  List.rev !acc

(* Maximal runs of consecutive unreachable slots. *)
let dead_ranges s =
  let n = Array.length s.reachable in
  let ranges = ref [] and start = ref (-1) in
  for pc = 0 to n - 1 do
    if not s.reachable.(pc) then begin
      if !start < 0 then start := pc
    end
    else if !start >= 0 then begin
      ranges := (!start, pc - 1) :: !ranges;
      start := -1
    end
  done;
  if !start >= 0 then ranges := (!start, n - 1) :: !ranges;
  List.rev !ranges

(* --- provenance notes --------------------------------------------------- *)

(* Notes mark where a declarative rule's code begins; a note's extent
   runs to the next note (or the end of the program). *)
let note_ranges ~notes n =
  let rec go = function
    | [] -> []
    | (pc, text) :: rest ->
        let stop = match rest with (next, _) :: _ -> next - 1 | [] -> n - 1 in
        (pc, stop, text) :: go rest
  in
  go (List.sort compare notes)

let attribute ~notes pc =
  List.fold_left
    (fun best (npc, text) ->
      if npc <= pc then
        match best with
        | Some (bpc, _) when bpc >= npc -> best
        | _ -> Some (npc, text)
      else best)
    None notes
  |> Option.map snd

(* Rules whose every instruction is unreachable: definitely dead. *)
let dead_notes ~notes s =
  let n = Array.length s.reachable in
  note_ranges ~notes n
  |> List.filter (fun (lo, hi, _) ->
         lo <= hi
         && (let all_dead = ref true in
             for pc = lo to hi do
               if s.reachable.(pc) then all_dead := false
             done;
             !all_dead))
  |> List.map (fun (lo, _, text) -> (lo, text))

(* --- the interpreter ---------------------------------------------------- *)

(* The first-match compilation pattern makes merge points inherently
   disjunctive: the entry of rule k+1 is "rule k's test A failed OR its
   test B failed", and a plain join forgets which.  The analysis
   therefore keeps a bounded disjunction of states per program point
   (path-sensitivity over the DAG) and only joins when a point exceeds
   [max_disjuncts] — joining is pure precision loss, never unsoundness.
   That bound keeps the whole pass O(n · max_disjuncts · fields): the
   program is a DAG, so each (pc, disjunct) is processed once. *)
let default_max_disjuncts = 64

let analyze ?(max_disjuncts = default_max_disjuncts) (p : Pfm.program) =
  let n = Array.length p.insns in
  let states : state list array = Array.make n [] in
  let allow = ref false and deny = ref false and reject = ref false in
  let const_branches = ref [] in
  let propagate pc st =
    (* Only valid forward edges; program order stays topological. *)
    if pc < n then
      match states.(pc) with
      | old when List.length old < max_disjuncts -> states.(pc) <- st :: old
      | last :: rest -> states.(pc) <- join_state last st :: rest
      | [] -> states.(pc) <- [ st ]
  in
  if n > 0 then
    states.(0) <-
      [
        {
          fi = Array.make p.n_int_fields itop;
          fs = Array.make p.n_str_fields stop;
          ai = Iset (ISet.singleton 0);
          asv = Sset (SSet.singleton "");
          src_i = None;
          src_s = None;
        };
      ];
  for pc = 0 to n - 1 do
    let disjuncts = states.(pc) in
    List.iter
      (fun st ->
        match p.insns.(pc) with
        | Pfm.Ld_int f ->
            let ok = f >= 0 && f < p.n_int_fields in
            propagate (pc + 1)
              { st with ai = (if ok then st.fi.(f) else itop);
                        src_i = (if ok then Some f else None) }
        | Pfm.Ld_str f ->
            let ok = f >= 0 && f < p.n_str_fields in
            propagate (pc + 1)
              { st with asv = (if ok then st.fs.(f) else stop);
                        src_s = (if ok then Some f else None) }
        | Pfm.Jmp d -> if d >= 0 then propagate (pc + 1 + d) st
        | Pfm.Jif (c, jt, jf) ->
            let feas_t, feas_f =
              match c with
              | Pfm.Str_eq _ | Pfm.Str_prefix _ ->
                  let t = srefine st.asv c true and f = srefine st.asv c false in
                  ( (if t = Sbot then None else Some (with_asv st t)),
                    if f = Sbot then None else Some (with_asv st f) )
              | Pfm.Eq_field f ->
                  let fv =
                    if f >= 0 && f < p.n_int_fields then st.fi.(f) else itop
                  in
                  let both = imeet st.ai fv in
                  let t = if both = Ibot then None else Some (with_ai st both) in
                  (* False edge: refutable only when both sides are the
                     same known constant. *)
                  let fl =
                    match (isingleton st.ai, isingleton fv) with
                    | Some a, Some b when a = b -> None
                    | _ -> Some st
                  in
                  (t, fl)
              | _ ->
                  let t = irefine st.ai c true and f = irefine st.ai c false in
                  ( (if t = Ibot then None else Some (with_ai st t)),
                    if f = Ibot then None else Some (with_ai st f) )
            in
            (match (feas_t, feas_f) with
            | Some _, None -> const_branches := (pc, true) :: !const_branches
            | None, Some _ -> const_branches := (pc, false) :: !const_branches
            | _ -> ());
            Option.iter (fun s -> if jt >= 0 then propagate (pc + 1 + jt) s) feas_t;
            Option.iter (fun s -> if jf >= 0 then propagate (pc + 1 + jf) s) feas_f
        | Pfm.Iswitch { tbl; default } ->
            let keys = Hashtbl.fold (fun k _ a -> ISet.add k a) tbl ISet.empty in
            Hashtbl.iter
              (fun k d ->
                if d >= 0 then
                  let v = imeet st.ai (Iset (ISet.singleton k)) in
                  if v <> Ibot then propagate (pc + 1 + d) (with_ai st v))
              tbl;
            if default >= 0 then begin
              let v = imeet st.ai (Inot keys) in
              if v <> Ibot then propagate (pc + 1 + default) (with_ai st v)
            end
        | Pfm.Sswitch { tbl; default } ->
            let keys =
              Hashtbl.fold (fun k _ a -> SSet.add k a) tbl SSet.empty
            in
            Hashtbl.iter
              (fun k d ->
                if d >= 0 then
                  let v = smeet st.asv (Sset (SSet.singleton k)) in
                  if v <> Sbot then propagate (pc + 1 + d) (with_asv st v))
              tbl;
            if default >= 0 then begin
              let v = smeet st.asv (Snot keys) in
              if v <> Sbot then propagate (pc + 1 + default) (with_asv st v)
            end
        | Pfm.Ret Pfm.Allow -> allow := true
        | Pfm.Ret Pfm.Deny -> deny := true
        | Pfm.Ret Pfm.Reject -> reject := true)
      disjuncts
  done;
  (* A Jif several disjuncts flow through may look constant from each in
     isolation while the outcomes differ; a branch is constant only if
     every disjunct agreed on the same single feasible side. *)
  let const_branches =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (pc, dir) ->
        match Hashtbl.find_opt tbl pc with
        | None -> Hashtbl.replace tbl pc (Some dir)
        | Some (Some d) when d = dir -> ()
        | Some _ -> Hashtbl.replace tbl pc None)
      !const_branches;
    (* Feasible-on-both-sides disjuncts never entered the list at all:
       require the recorded votes to cover every disjunct that reached
       the pc. *)
    let votes = Hashtbl.create 16 in
    List.iter
      (fun (pc, _) ->
        Hashtbl.replace votes pc
          (1 + Option.value ~default:0 (Hashtbl.find_opt votes pc)))
      !const_branches;
    Hashtbl.fold
      (fun pc dir acc ->
        match dir with
        | Some d when Hashtbl.find votes pc = List.length states.(pc) ->
            (pc, d) :: acc
        | _ -> acc)
      tbl []
    |> List.sort compare
  in
  let joined = function
    | [] -> None
    | st :: rest -> Some (List.fold_left join_state st rest)
  in
  {
    program = p;
    reachable = Array.map (fun ds -> ds <> []) states;
    state_at = Array.map joined states;
    allow_reachable = !allow;
    deny_reachable = !deny;
    reject_reachable = !reject;
    const_branches;
  }

(* --- reports ------------------------------------------------------------ *)

let pp_summary ppf s =
  let p = s.program in
  Format.fprintf ppf "@[<v># %s: %d insns, %d dead, allow=%b deny=%b reject=%b@,"
    p.Pfm.pname (Array.length p.Pfm.insns)
    (List.length (dead_pcs s))
    s.allow_reachable s.deny_reachable s.reject_reachable;
  Array.iteri
    (fun pc insn ->
      Format.fprintf ppf "%4d: %c %s@," pc
        (if s.reachable.(pc) then ' ' else 'X')
        (Format.asprintf "%a" Pfm.pp_insn insn))
    p.Pfm.insns;
  List.iter
    (fun (pc, dir) ->
      Format.fprintf ppf "const branch at %d: always %b@," pc dir)
    s.const_branches;
  Format.fprintf ppf "@]"

let summary_to_string s = Format.asprintf "%a" pp_summary s
