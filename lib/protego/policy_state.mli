(** Kernel-resident Protego policy state and the /proc configuration
    grammars.

    The state is configured through four files under /proc/protego (either
    written directly by the administrator or kept in sync with the legacy
    configuration files by the monitoring daemon, Figure 1):

    - [mount_whitelist]: ["allow <source> <target> <fstype> <flags|-> <user|users>"]
    - [bind_map]:        ["<port> <tcp|udp> <binary> <uid>"] (§4.1.3 grammar)
    - [delegation]:      /etc/sudoers syntax (§4.3)
    - [accounts]:        ["user <name> <uid> <gid> <groups|->"] and
                         ["group <name> <gid> <members|-> [<hash>]"] — the
                         uid/name mapping delegation rules are written in.

    Policies that take no parameters (raw-socket marking, the shadow-read
    reauthentication rule, the ssh host key ACL) are hard-coded here.

    A fifth file, [filter_stats], exposes the filter-machine dispatcher
    (see {!Pfm_dispatch}).  Reading it yields:
    {v
    engine <pfm|ref>
    hook <name> evals <n> allow <n> deny <n> reject <n> invalidations <n> insns <n>
    v}
    with one [hook] line per filtered hook ([mount], [umount], [bind],
    [nf_output], [ppp_ioctl]).  Writing ["engine pfm"] or ["engine ref"]
    selects the evaluating engine, writing ["reset"] zeroes every counter,
    and anything else is [EINVAL]. *)

open Protego_kernel

module Phase = Protego_base.Phase

type mount_rule = {
  mr_source : string;
  mr_target : string;
  mr_fstype : string;
  mr_flags : Ktypes.mount_flag list;
  mr_mode : [ `User | `Users ];
      (** ["user"]: only the mounting user may unmount; ["users"]: anyone. *)
  mr_phase : Protego_base.Phase.guard;
      (** lifecycle window the rule is active in, from an optional trailing
          [phase<=...] token (DESIGN.md §11) *)
}

type account_user = {
  au_name : string;
  au_uid : int;
  au_gid : int;
  au_groups : string list;  (** supplementary group names *)
}

type account_group = {
  ag_name : string;
  ag_gid : int;
  ag_members : string list;
  ag_password : string option;  (** hash for newgrp password-protected groups *)
}

type source = Mounts | Binds | Delegation | Accounts | Ppp
(** The /proc-configurable policy sources, for generation accounting. *)

type t = {
  mutable mounts : mount_rule list;
  mutable binds : Protego_policy.Bindconf.entry list;
  mutable delegation : Protego_policy.Sudoers.t;
  mutable users : account_user list;
  mutable groups : account_group list;
  mutable ppp : Protego_policy.Pppopts.t;
  mutable reauth_read_prefixes : string list;
      (** reading files under these paths requires recent authentication *)
  mutable file_acl : (string * string list) list;
      (** sensitive file -> binaries allowed to open it (ssh-keysign rule) *)
  generations : int Atomic.t array;
      (** per-source generation counters, indexed by {!source} — use
          {!generation} / {!bump_generation} rather than the raw array.
          Atomic so the multi-domain decision plane can read the vector
          while a /proc writer bumps it; see DESIGN.md §6. *)
}

val create : unit -> t
(** Empty policy plus the hard-coded defaults: reauthentication on
    [/etc/shadows/], host-key ACL for [/usr/lib/openssh/ssh-keysign].
    All generations start at 0. *)

(** {1 Generations}

    Every /proc/protego policy write bumps the written source's generation
    counter.  The decision cache ({!Decision_cache}) stamps each memoized
    verdict with the generation vector of the sources its hook reads, so a
    reload lazily invalidates exactly the affected entries — no global
    flush.  The dispatcher additionally bumps a source's generation when it
    observes the source's physical identity change without a /proc write
    (the bench and fuzz harnesses assign fields directly). *)

val source_name : source -> string
(** ["mounts"], ["binds"], ["delegation"], ["accounts"], ["ppp"]. *)

val sources : source list
(** All sources, in {!source_index} order — for freezing the full vector. *)

val source_index : source -> int
(** Dense index into {!t.generations} (0..4, {!sources} order). *)

val generation : t -> source -> int
val bump_generation : t -> source -> unit

(** {1 Name service} *)

val uid_of_name : t -> string -> int option
val name_of_uid : t -> int -> string option
val gid_of_group : t -> string -> int option
val group_of_gid : t -> int -> account_group option
val group_names_of_user : t -> string -> string list
(** Primary + supplementary group names. *)

(** {1 /proc grammars: parse (on write) and print (on read)} *)

val parse_mounts : string -> (mount_rule list, string) result
val mounts_to_string : mount_rule list -> string

val flags_to_string : Ktypes.mount_flag list -> string
(** ["-"] for the empty list, else comma-joined flag names — the
    whitelist grammar's flag column, reused by the record-mode audit
    descriptors and the policy synthesizer. *)

val flags_of_string : string -> (Ktypes.mount_flag list, string) result

val parse_accounts :
  string -> (account_user list * account_group list, string) result
val accounts_to_string : account_user list -> account_group list -> string

(** {1 Queries used by the LSM hooks} *)

val find_mount_rule :
  ?phase:Protego_base.Phase.t ->
  t -> source:string -> target:string -> fstype:string -> mount_rule option
(** With [?phase], rules whose guard is inactive in that phase are
    skipped — the same residual walk the compiled per-phase ladders
    perform.  Without it, guards are ignored.  All the queries and
    oracles below treat [?phase] identically. *)

val flags_satisfy :
  requested:Ktypes.mount_flag list -> required:Ktypes.mount_flag list -> bool
(** The caller must request at least every flag the rule demands. *)

val bind_allowed :
  ?phase:Protego_base.Phase.t ->
  t -> port:int -> proto:Protego_policy.Bindconf.proto ->
  exe:string -> uid:int -> bool

(** {2 Reference decision oracles}

    These three wrap the primitive queries into the exact allow/deny
    decision each LSM hook makes.  They are the list-walking reference
    semantics the compiled {!Protego_filter.Pfm} programs must reproduce;
    the dispatcher runs them when the [ref] engine is selected and the
    differential fuzz suite checks the compiled verdicts against them. *)

val mount_decision :
  ?phase:Protego_base.Phase.t ->
  t -> source:string -> target:string -> fstype:string ->
  flags:Ktypes.mount_flag list -> bool
(** First rule matching (source, target, fstype — ["auto"] wildcards on
    either side) decides; its flag requirement is final. *)

val umount_decision :
  ?phase:Protego_base.Phase.t ->
  t -> target:string -> mounted_by:int -> ruid:int -> bool
(** First rule naming [target] decides: [`Users] allows anyone, [`User]
    only the user the mount records as its creator. *)

val ppp_ioctl_decision :
  ?phase:Protego_base.Phase.t ->
  t -> device:string -> opt:Protego_net.Ppp.option_ -> bool
(** Device whitelisted by [allow-device] and the option intrinsically safe. *)

val file_acl_allows : t -> path:string -> exe:string -> bool option
(** [None] if no ACL covers [path]; [Some allowed] otherwise. *)

val needs_reauth_to_read : t -> string -> bool
