(** The filter-machine dispatcher: the glue between the LSM hooks and the
    compiled {!Protego_filter.Pfm} programs.

    Each filtered hook (mount, umount, bind, netfilter output, ppp ioctl)
    asks the dispatcher for a verdict.  Under the [`Pfm] engine (the
    default) the dispatcher compiles the hook's policy source into a
    bytecode program, caches it, and evaluates it; under [`Ref] it runs
    the original list-walking decision ({!Policy_state.mount_decision}
    and friends, {!Protego_net.Netfilter.walk}).  Both paths must agree —
    the [`Ref] engine is kept in-tree as the differential-testing oracle.

    Program caches key on the {e physical identity} of the policy source
    (the rule list / bind map / ppp policy record / netfilter chain).
    Every write to the corresponding /proc/protego file installs a fresh
    value, so the next evaluation recompiles; direct field assignment
    (as the bench ablations do) is caught the same way. *)

type engine = [ `Pfm | `Ref ]

type lint_mode = [ `Warn | `Enforce ]
(** What the load-time policy lint gate does with error-severity
    findings: [`Warn] (the default) installs the policy and tags the
    audit trail; [`Enforce] refuses the install. *)

type hook_stats = {
  mutable evals : int;          (** decisions taken on this hook *)
  mutable allow : int;
  mutable deny : int;
  mutable reject : int;
  mutable invalidations : int;  (** recompiles forced by a policy change *)
  mutable insns : int;          (** bytecode instructions retired ([`Pfm] only) *)
}

type t

val create : unit -> t
(** Starts on the [`Pfm] engine with empty caches and zeroed stats. *)

val engine : t -> engine
val set_engine : t -> engine -> unit
val engine_name : t -> string
(** ["pfm"] or ["ref"] — the value audit records and /proc report. *)

val lint_mode : t -> lint_mode
val set_lint_mode : t -> lint_mode -> unit
val lint_mode_name : t -> string
(** ["warn"] or ["enforce"]. *)

val stats : t -> (string * hook_stats) list
(** Fixed order: mount, umount, bind, nf_output, ppp_ioctl. *)

val reset_stats : t -> unit

val cached_program : t -> string -> Protego_filter.Pfm.program option
(** The compiled program currently cached for a hook name (as listed by
    {!stats}), if any evaluation has compiled one. *)

(** {1 Hook decisions} *)

val decide_mount :
  t -> Policy_state.t -> source:string -> target:string -> fstype:string ->
  flags:Protego_kernel.Ktypes.mount_flag list -> bool

val decide_umount :
  t -> Policy_state.t -> target:string -> mounted_by:int -> ruid:int -> bool

val decide_bind :
  t -> Policy_state.t -> port:int -> proto:Protego_policy.Bindconf.proto ->
  exe:string -> uid:int -> bool

val decide_ppp_ioctl :
  t -> Policy_state.t -> device:string -> opt:Protego_net.Ppp.option_ -> bool

val decide_nf_output :
  t -> Protego_net.Netfilter.t -> Protego_net.Packet.t ->
  origin:Protego_net.Packet.origin -> Protego_net.Netfilter.verdict
(** Installed as the chain's output override at {!Lsm.install} time. *)

(** {1 Load-time policy lint} *)

val lint_input :
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> Protego_analysis.Policy_lint.input
(** The lint engine's view of a policy state (plus, optionally, the
    netfilter chains, which live on the machine rather than in
    {!Policy_state}). *)

val lint_report :
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> Protego_analysis.Policy_lint.finding list
(** [Policy_lint.lint] over {!lint_input} — what /proc/protego/lint
    renders. *)

val check_policy_load :
  t ->
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> sources:string list ->
  [ `Clean
  | `Warned of Protego_analysis.Policy_lint.finding list
  | `Refused of Protego_analysis.Policy_lint.finding list ]
(** The gate behind every /proc policy write: lint the candidate state
    and keep only the findings for [sources] (the sources being written)
    plus the cross-source checks — a pre-existing defect in an unrelated
    source never vetoes an install.  [`Refused] is only possible in
    [`Enforce] mode and only for error-severity findings. *)

(** {1 /proc/protego/filter_stats} *)

val render : t -> string
(** The grammar documented in {!Policy_state}: an [engine] header line
    followed by one [hook] line per filtered hook. *)

val handle_write : t -> string -> (unit, string) result
(** ["reset"], ["engine pfm"], ["engine ref"]; anything else errors. *)
