(** The filter-machine dispatcher: the glue between the LSM hooks and the
    compiled {!Protego_filter.Pfm} programs.

    Each filtered hook (mount, umount, bind, netfilter output, ppp ioctl)
    asks the dispatcher for a verdict.  The lookup order is {e decision
    cache -> compiled PFM -> reference engine}: a {!Decision_cache} memo
    keyed on (hook, subject credential key, canonicalized argument tuple)
    is consulted first; on a miss, under the [`Pfm] engine (the default)
    the dispatcher compiles the hook's policy source into a bytecode
    program, caches it, and evaluates it; under [`Ref] it runs the
    original list-walking decision ({!Policy_state.mount_decision} and
    friends, {!Protego_net.Netfilter.walk}).  All three paths must agree —
    the [`Ref] engine is kept in-tree as the differential-testing oracle.
    The computed verdict is memoized (negative results included), stamped
    with the generation vector of the policy sources the hook reads
    ({!Policy_state.generation}); a policy reload bumps the written
    source's generation and lazily invalidates exactly the stamped
    entries.

    Program caches key on the {e physical identity} of the policy source
    (the rule list / bind map / ppp policy record / netfilter chain).
    Every write to the corresponding /proc/protego file installs a fresh
    value, so the next evaluation recompiles; direct field assignment
    (as the bench ablations do) is caught the same way — the dispatcher
    watches each source's physical identity and bumps its generation on
    any unannounced change, so the decision cache is invalidated too.

    A dispatcher serves one {!Policy_state.t} (as {!Lsm.install} wires
    it); decision-cache keys do not name the state, so sharing a
    dispatcher between states would let entries from one answer for the
    other. *)

type engine = [ `Pfm | `Ref ]

type lint_mode = [ `Warn | `Enforce ]
(** What the load-time policy lint gate does with error-severity
    findings: [`Warn] (the default) installs the policy and tags the
    audit trail; [`Enforce] refuses the install. *)

type hook_stats = {
  mutable evals : int;          (** decisions taken on this hook *)
  mutable allow : int;
  mutable deny : int;
  mutable reject : int;
  mutable invalidations : int;  (** recompiles forced by a policy change *)
  mutable insns : int;          (** bytecode instructions retired ([`Pfm] only) *)
}

type t

val create : unit -> t
(** Starts on the [`Pfm] engine with empty caches and zeroed stats. *)

val engine : t -> engine
val set_engine : t -> engine -> unit
val engine_name : t -> string
(** ["pfm"] or ["ref"] — the configured evaluation engine. *)

val decision_engine_name : t -> string
(** What served the most recent decision: ["cache"], ["pfm"] or ["ref"] —
    the value audit records carry.  Before any decision, the configured
    engine's name. *)

val cache : t -> Decision_cache.t
(** The decision cache in front of both engines. *)

val trace : t -> Trace.t
(** The decision tracer: per-(hook, engine) latency histograms plus the
    opt-in span ring.  Unarmed (and skipped by every decision) until a
    clock is installed with {!Trace.set_clock} or spans are switched
    on. *)

val last_span : t -> int option
(** Span id of the most recent decision — what its audit record carries.
    [None] when spans were off for that decision. *)

val lint_mode : t -> lint_mode
val set_lint_mode : t -> lint_mode -> unit
val lint_mode_name : t -> string
(** ["warn"] or ["enforce"]. *)

val record_mode : t -> bool

val set_record : t -> bool -> unit
(** Permissive record mode ([/proc/protego/record]).  While on, every
    decide function returns allow; a decision the policy would actually
    have denied sets {!last_recorded} so the hook layer can emit a
    record-tagged audit entry carrying the full canonical arguments.
    Engine caches and front slots always hold the true verdicts, so
    toggling the mode needs no invalidation. *)

val last_recorded : t -> bool
(** The most recent decide_* call was a would-deny flipped to allow by
    record mode.  [false] after any genuine allow or deny. *)

val stats : t -> (string * hook_stats) list
(** Fixed order: mount, umount, bind, nf_output, ppp_ioctl. *)

val reset_stats : t -> unit

val cached_program : t -> string -> Protego_filter.Pfm.program option
(** The compiled program currently cached for a hook name (as listed by
    {!stats}), if any evaluation has compiled one. *)

(** {1 Profile-guided recompilation}

    [optimize] runs {!Protego_filter.Pfm_opt.optimize} over every hook's
    cached program and gates each rewrite on {!Protego_filter.Pfm.verify}
    {e and} a {!Protego_analysis.Pfm_equiv.prove} equivalence proof
    before installing it in the program cache.  A refuted or unproven
    rewrite is never installed: the original program keeps serving, the
    rejection counter is bumped, and a line is queued on the opt log for
    the caller (the LSM's /proc handler) to push to dmesg/audit.  A
    policy reload recompiles from source as usual, demoting a previously
    installed optimization to "stale" in {!render}. *)

val optimize : t -> (string * string) list
(** Per hook, in {!stats} order: what happened ("installed: ...",
    "unchanged: ...", "rejected: ...", "skipped: no compiled program"). *)

val deoptimize : t -> unit
(** Restore every hook whose slot still serves an installed optimized
    program back to its original compiled program. *)

val opt_rejects : t -> int
(** Rewrites the verify/prove gate has refused since [create]. *)

val drain_opt_log : t -> string list
(** Pending install/reject/revert lines, oldest first; clears the log. *)

(** {1 Hook decisions} *)

val decide_mount :
  t -> ?subject:int -> ?phase:Protego_base.Phase.t -> Policy_state.t ->
  source:string -> target:string ->
  fstype:string -> flags:Protego_kernel.Ktypes.mount_flag list -> bool
(** [subject] is the caller's credential key (real uid) for the cache key;
    the mount verdict itself is subject-independent, so it defaults to 0
    for callers without task context (bench, fuzz).  [phase] is the
    caller's lifecycle phase (default {!Protego_base.Phase.initial},
    verdict-neutral for unphased policies): every task-scoped decision
    here and below is keyed on it in the front slot and the cache table,
    so a phase transition strands exactly the transitioning task's stale
    entries, and it rides into the PFM context / reference oracle so
    phase-guarded rules see it. *)

val decide_umount :
  t -> ?phase:Protego_base.Phase.t -> Policy_state.t -> target:string ->
  mounted_by:int -> ruid:int -> bool
(** [ruid] doubles as the cache subject. *)

val decide_bind :
  t -> ?phase:Protego_base.Phase.t -> Policy_state.t -> port:int ->
  proto:Protego_policy.Bindconf.proto -> exe:string -> uid:int -> bool
(** [uid] doubles as the cache subject. *)

val decide_ppp_ioctl :
  t -> ?subject:int -> ?phase:Protego_base.Phase.t -> Policy_state.t ->
  device:string -> opt:Protego_net.Ppp.option_ -> bool
(** The cached argument tuple canonicalizes [opt] to the one bit the
    decision reads: whether the option is intrinsically safe. *)

val decide_nf_output :
  t -> Protego_net.Netfilter.t -> Protego_net.Packet.t ->
  origin:Protego_net.Packet.origin -> Protego_net.Netfilter.verdict
(** Installed as the chain's output override at {!Lsm.install} time. *)

(** {1 Load-time policy lint} *)

val lint_input :
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> Protego_analysis.Policy_lint.input
(** The lint engine's view of a policy state (plus, optionally, the
    netfilter chains, which live on the machine rather than in
    {!Policy_state}). *)

val lint_report :
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> Protego_analysis.Policy_lint.finding list
(** [Policy_lint.lint] over {!lint_input} — what /proc/protego/lint
    renders. *)

val check_policy_load :
  t ->
  ?chains:
    (string * Protego_net.Netfilter.rule list * Protego_net.Netfilter.verdict)
    list ->
  Policy_state.t -> sources:string list ->
  [ `Clean
  | `Warned of Protego_analysis.Policy_lint.finding list
  | `Refused of Protego_analysis.Policy_lint.finding list ]
(** The gate behind every /proc policy write: lint the candidate state
    and keep only the findings for [sources] (the sources being written)
    plus the cross-source checks — a pre-existing defect in an unrelated
    source never vetoes an install.  [`Refused] is only possible in
    [`Enforce] mode and only for error-severity findings. *)

(** {1 /proc/protego/filter_stats} *)

val render : t -> string
(** The grammar documented in {!Policy_state}: an [engine] header line,
    one [hook] line per filtered hook, one [opt <hook> <status>] line
    per hook ("none", "active: ...", "rejected: ...", or "stale (policy
    changed)"), and a closing [opt_rejects <n>] line. *)

val handle_write : t -> string -> (unit, string) result
(** ["reset"], ["engine pfm"], ["engine ref"], ["optimize"],
    ["deoptimize"]; anything else errors.  ["optimize"] returns [Ok]
    even when rewrites are rejected by the proof gate — rejections are
    reported through {!render} and {!drain_opt_log}, not as write
    errors. *)

(** {1 /proc/protego/cache_stats} *)

val render_cache : t -> string
(** {!Decision_cache.render} of the dispatcher's cache; hook lines come
    out in the {!stats} order. *)

val handle_cache_write : t -> string -> (unit, string) result
(** ["enable on"], ["enable off"], ["reset"]; anything else errors. *)

(** {1 /proc/protego/trace} *)

val render_trace : t -> string
(** {!Trace.render_trace} of the dispatcher's tracer. *)

val handle_trace_write : t -> string -> (unit, string) result
(** ["on"], ["off"], ["reset"], ["capacity <n>"]; anything else
    errors. *)

(** {1 /proc/protego/latency} *)

val render_latency : t -> string
(** {!Trace.render_latency}: one line per (hook, engine) pair with
    p50/p90/p99 and max. *)

val handle_latency_write : t -> string -> (unit, string) result
(** ["reset"]; anything else errors. *)
