module Pfm = Protego_filter.Pfm
module Compile = Protego_filter.Pfm_compile
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts

module Policy_lint = Protego_analysis.Policy_lint

type engine = [ `Pfm | `Ref ]
type lint_mode = [ `Warn | `Enforce ]

type hook_stats = {
  mutable evals : int;
  mutable allow : int;
  mutable deny : int;
  mutable reject : int;
  mutable invalidations : int;
  mutable insns : int;
}

type 'k cache = { mutable slot : ('k * Pfm.program) option }

type t = {
  mutable engine : engine;
  mutable lint_mode : lint_mode;
  mount_cache : Policy_state.mount_rule list cache;
  umount_cache : Policy_state.mount_rule list cache;
  bind_cache : Bindconf.entry list cache;
  ppp_cache : Pppopts.t cache;
  nf_cache : (Netfilter.rule list * Netfilter.verdict) cache;
  mount_stats : hook_stats;
  umount_stats : hook_stats;
  bind_stats : hook_stats;
  nf_stats : hook_stats;
  ppp_stats : hook_stats;
}

let fresh_stats () =
  { evals = 0; allow = 0; deny = 0; reject = 0; invalidations = 0; insns = 0 }

let create () =
  { engine = `Pfm;
    lint_mode = `Warn;
    mount_cache = { slot = None };
    umount_cache = { slot = None };
    bind_cache = { slot = None };
    ppp_cache = { slot = None };
    nf_cache = { slot = None };
    mount_stats = fresh_stats ();
    umount_stats = fresh_stats ();
    bind_stats = fresh_stats ();
    nf_stats = fresh_stats ();
    ppp_stats = fresh_stats () }

let engine t = t.engine
let set_engine t e = t.engine <- e
let engine_name t = match t.engine with `Pfm -> "pfm" | `Ref -> "ref"
let lint_mode t = t.lint_mode
let set_lint_mode t m = t.lint_mode <- m

let lint_mode_name t =
  match t.lint_mode with `Warn -> "warn" | `Enforce -> "enforce"

let hooks t =
  [ ("mount", t.mount_stats); ("umount", t.umount_stats);
    ("bind", t.bind_stats); ("nf_output", t.nf_stats);
    ("ppp_ioctl", t.ppp_stats) ]

let stats = hooks

let reset_stats t =
  List.iter
    (fun (_, s) ->
      s.evals <- 0; s.allow <- 0; s.deny <- 0; s.reject <- 0;
      s.invalidations <- 0; s.insns <- 0)
    (hooks t)

let cached_program t name =
  let slot c = Option.map snd c.slot in
  match name with
  | "mount" -> slot t.mount_cache
  | "umount" -> slot t.umount_cache
  | "bind" -> slot t.bind_cache
  | "nf_output" -> slot t.nf_cache
  | "ppp_ioctl" -> slot t.ppp_cache
  | _ -> None

(* --- cache + evaluation plumbing --------------------------------------- *)

let fetch cache st ~same ~key ~compile =
  match cache.slot with
  | Some (k, p) when same k key -> p
  | prev ->
      (match prev with
       | Some _ -> st.invalidations <- st.invalidations + 1
       | None -> ());
      let p = compile key in
      cache.slot <- Some (key, p);
      p

let run st (p : Pfm.program) ctx =
  let before = p.Pfm.retired in
  let v = Pfm.eval p ctx in
  st.insns <- st.insns + (p.Pfm.retired - before);
  v

let tally st (v : Pfm.verdict) =
  st.evals <- st.evals + 1;
  (match v with
   | Pfm.Allow -> st.allow <- st.allow + 1
   | Pfm.Deny -> st.deny <- st.deny + 1
   | Pfm.Reject -> st.reject <- st.reject + 1);
  v

let of_bool b = if b then Pfm.Allow else Pfm.Deny

(* --- hook decisions ---------------------------------------------------- *)

let filter_rule (r : Policy_state.mount_rule) : Compile.mount_rule =
  { Compile.fm_source = r.Policy_state.mr_source;
    fm_target = r.Policy_state.mr_target;
    fm_fstype = r.Policy_state.mr_fstype;
    fm_flags = r.Policy_state.mr_flags;
    fm_user_only = (r.Policy_state.mr_mode = `User) }

let decide_mount t (st : Policy_state.t) ~source ~target ~fstype ~flags =
  let v =
    match t.engine with
    | `Ref -> of_bool (Policy_state.mount_decision st ~source ~target ~fstype ~flags)
    | `Pfm ->
        let p =
          fetch t.mount_cache t.mount_stats ~same:( == )
            ~key:st.Policy_state.mounts
            ~compile:(fun rules -> Compile.mount (List.map filter_rule rules))
        in
        run t.mount_stats p (Compile.mount_ctx ~source ~target ~fstype ~flags)
  in
  tally t.mount_stats v = Pfm.Allow

let decide_umount t (st : Policy_state.t) ~target ~mounted_by ~ruid =
  let v =
    match t.engine with
    | `Ref -> of_bool (Policy_state.umount_decision st ~target ~mounted_by ~ruid)
    | `Pfm ->
        let p =
          fetch t.umount_cache t.umount_stats ~same:( == )
            ~key:st.Policy_state.mounts
            ~compile:(fun rules -> Compile.umount (List.map filter_rule rules))
        in
        run t.umount_stats p (Compile.umount_ctx ~target ~mounted_by ~ruid)
  in
  tally t.umount_stats v = Pfm.Allow

let decide_bind t (st : Policy_state.t) ~port ~proto ~exe ~uid =
  let v =
    match t.engine with
    | `Ref -> of_bool (Policy_state.bind_allowed st ~port ~proto ~exe ~uid)
    | `Pfm ->
        let p =
          fetch t.bind_cache t.bind_stats ~same:( == )
            ~key:st.Policy_state.binds ~compile:Compile.bind
        in
        run t.bind_stats p (Compile.bind_ctx ~port ~proto ~exe ~uid)
  in
  tally t.bind_stats v = Pfm.Allow

let decide_ppp_ioctl t (st : Policy_state.t) ~device ~opt =
  let v =
    match t.engine with
    | `Ref -> of_bool (Policy_state.ppp_ioctl_decision st ~device ~opt)
    | `Pfm ->
        let p =
          fetch t.ppp_cache t.ppp_stats ~same:( == )
            ~key:st.Policy_state.ppp ~compile:Compile.ppp_ioctl
        in
        run t.ppp_stats p (Compile.ppp_ctx ~device ~opt)
  in
  tally t.ppp_stats v = Pfm.Allow

let decide_nf_output t nf pkt ~origin =
  match t.engine with
  | `Ref ->
      let v = Netfilter.walk nf Netfilter.Output pkt ~origin in
      ignore (tally t.nf_stats (Compile.verdict_of_netfilter v));
      v
  | `Pfm ->
      let rules = Netfilter.rules nf Netfilter.Output in
      let policy = Netfilter.policy nf Netfilter.Output in
      let p =
        fetch t.nf_cache t.nf_stats
          ~same:(fun (r1, p1) (r2, p2) -> r1 == r2 && p1 = p2)
          ~key:(rules, policy)
          ~compile:(fun (rules, policy) -> Compile.netfilter ~rules ~policy)
      in
      let v = tally t.nf_stats (run t.nf_stats p (Compile.packet_ctx pkt ~origin)) in
      Compile.netfilter_of_verdict v

(* --- load-time policy lint --------------------------------------------- *)

let lint_input ?(chains = []) (st : Policy_state.t) =
  {
    Policy_lint.mounts = List.map filter_rule st.Policy_state.mounts;
    binds = st.Policy_state.binds;
    delegation = st.Policy_state.delegation;
    accounts =
      {
        Policy_lint.user_names =
          List.map
            (fun (u : Policy_state.account_user) ->
              (u.Policy_state.au_name, u.Policy_state.au_uid))
            st.Policy_state.users;
        group_names =
          List.map
            (fun (g : Policy_state.account_group) -> g.Policy_state.ag_name)
            st.Policy_state.groups;
      };
    ppp = Some st.Policy_state.ppp;
    chains;
  }

let lint_report ?chains st = Policy_lint.lint (lint_input ?chains st)

(* Findings that bear on installing [sources] — each source's own plus
   the cross-source checks.  A delegation typo must not veto a bind-map
   install, so the gate never looks wider than the write at hand. *)
let relevant findings ~sources =
  List.filter
    (fun (f : Policy_lint.finding) ->
      List.mem f.Policy_lint.source sources || f.Policy_lint.source = "cross")
    findings

(* The load-time gate: lint the candidate state a /proc policy write
   would install.  [`Refused fs] (enforce mode, error-severity findings
   among the written sources) means the caller must not apply the write;
   [`Warned fs] means apply but tag the audit trail. *)
let check_policy_load t ?chains st ~sources =
  let findings = relevant (lint_report ?chains st) ~sources in
  if t.lint_mode = `Enforce && Policy_lint.has_errors findings then
    `Refused findings
  else if findings <> [] then `Warned findings
  else `Clean

(* --- /proc/protego/filter_stats ---------------------------------------- *)

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b "engine ";
  Buffer.add_string b (engine_name t);
  Buffer.add_char b '\n';
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf
           "hook %s evals %d allow %d deny %d reject %d invalidations %d insns %d\n"
           name s.evals s.allow s.deny s.reject s.invalidations s.insns))
    (hooks t);
  Buffer.contents b

let handle_write t contents =
  match String.trim contents with
  | "reset" -> reset_stats t; Ok ()
  | "engine pfm" -> t.engine <- `Pfm; Ok ()
  | "engine ref" -> t.engine <- `Ref; Ok ()
  | other -> Error ("filter_stats: unknown command: " ^ other)
