module Pfm = Protego_filter.Pfm
module Compile = Protego_filter.Pfm_compile
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts
module Errno = Protego_base.Errno
module Phase = Protego_base.Phase

module Policy_lint = Protego_analysis.Policy_lint
module Pfm_opt = Protego_filter.Pfm_opt
module Pfm_equiv = Protego_analysis.Pfm_equiv

type engine = [ `Pfm | `Ref ]
type lint_mode = [ `Warn | `Enforce ]

type hook_stats = {
  mutable evals : int;
  mutable allow : int;
  mutable deny : int;
  mutable reject : int;
  mutable invalidations : int;
  mutable insns : int;
}

type 'k cache = { mutable slot : ('k * Pfm.program) option }

(* Last source value observed by a decision, by physical identity.  When it
   changes without a /proc write having bumped the generation (direct field
   assignment, as the bench ablations and fuzz harnesses do), the observer
   bumps the generation itself, so decision-cache entries stamped under the
   old value can never be served. *)
type 'k watch = { mutable seen : 'k option }

(* One-entry front slot per hook, ahead of the {!Decision_cache} table.
   Where the table keys on the canonical argument string, the slot keys on
   the raw arguments by physical identity ('a is the hook's raw tuple) —
   sound because the argument values are immutable, and cheap enough that a
   repeated decision costs a handful of compares.  Validity is the same
   generation check the table uses, plus the cache epoch (a wholesale
   [clear]/[reset] must not leave a servable slot behind).  [s_x] carries
   the hook's canonicalized integer argument (flag mask, port/proto,
   option-safety bit); hooks without one leave it 0. *)
type 'a slot = {
  mutable s_epoch : int;  (* -1: never filled *)
  mutable s_gen : int;
  mutable s_sub : int;
  mutable s_ph : int;  (* subject's lifecycle-phase index at fill time *)
  mutable s_x : int;
  mutable s_args : 'a option;
  mutable s_verdict : Pfm.verdict;
}

let fresh_slot () =
  { s_epoch = -1; s_gen = 0; s_sub = 0; s_ph = 0; s_x = 0; s_args = None;
    s_verdict = Pfm.Deny }

(* One latency histogram per engine that can serve a hook's decision. *)
type engine_keys = {
  ek_cache : Trace.key;
  ek_pfm : Trace.key;
  ek_ref : Trace.key;
}

type t = {
  mutable engine : engine;
  mutable lint_mode : lint_mode;
  mutable record : bool;
      (** permissive record mode: would-be denials are granted, flagged
          via [last_recorded] so the hook layer can audit them *)
  mutable last_recorded : bool;
      (** the most recent decision was a would-deny flipped by record
          mode (false on every genuine allow/deny) *)
  mutable last_engine : string;
      (** what served the most recent decision: "cache", "pfm" or "ref" *)
  mount_cache : Policy_state.mount_rule list cache;
  umount_cache : Policy_state.mount_rule list cache;
  bind_cache : Bindconf.entry list cache;
  ppp_cache : Pppopts.t cache;
  nf_cache : (Netfilter.rule list * Netfilter.verdict) cache;
  mount_stats : hook_stats;
  umount_stats : hook_stats;
  bind_stats : hook_stats;
  nf_stats : hook_stats;
  ppp_stats : hook_stats;
  (* decision cache and its per-hook counters *)
  dcache : Decision_cache.t;
  ch_mount : Decision_cache.hook;
  ch_umount : Decision_cache.hook;
  ch_bind : Decision_cache.hook;
  ch_nf : Decision_cache.hook;
  ch_ppp : Decision_cache.hook;
  (* physical-identity watches backing the generation counters *)
  mounts_watch : Policy_state.mount_rule list watch;
  binds_watch : Bindconf.entry list watch;
  ppp_watch : Pppopts.t watch;
  nf_watch : (Netfilter.rule list * Netfilter.verdict) watch;
  mutable nf_gen : int;
  (* per-hook front slots (physical-identity fast path) *)
  mount_slot :
    (string * string * string * Protego_kernel.Ktypes.mount_flag list) slot;
  umount_slot : string slot;
  bind_slot : string slot;
  ppp_slot : (string * Protego_net.Ppp.option_) slot;
  nf_slot : (Packet.t * Packet.origin) slot;
  (* scratch generation vectors, one per hook, reused on every decision so
     the hit path allocates nothing but the key *)
  g_mount : int array;
  g_umount : int array;
  g_bind : int array;
  g_ppp : int array;
  g_nf : int array;
  (* decision tracing: per-(hook, engine) latency histograms, the span
     ring, and the span id of the most recent decision (for audit) *)
  trace : Trace.t;
  mutable traced : bool;
      (* mirror of [Trace.armed trace] (kept current via [Trace.on_arm]):
         the decision prologue reads it from this record instead of
         chasing into the tracer *)
  tk_mount : engine_keys;
  tk_umount : engine_keys;
  tk_bind : engine_keys;
  tk_nf : engine_keys;
  tk_ppp : engine_keys;
  mutable last_span : int;
      (* span id of the last decision, 0 when none: kept unboxed so the
         untraced hot path clears it with a plain store, not caml_modify *)
  (* profile-guided recompilation: per hook the (original, optimized)
     pair currently installed, a human-readable status, the running
     count of gate rejections, and pending log lines for dmesg/audit *)
  opt_installed : (string, Pfm.program * Pfm.program) Hashtbl.t;
  opt_status : (string, string) Hashtbl.t;
  mutable opt_rejects : int;
  mutable opt_log : string list; (* newest first *)
}

let fresh_stats () =
  { evals = 0; allow = 0; deny = 0; reject = 0; invalidations = 0; insns = 0 }

let engine_keys tr hook =
  { ek_cache = Trace.register tr ~hook ~engine:"cache";
    ek_pfm = Trace.register tr ~hook ~engine:"pfm";
    ek_ref = Trace.register tr ~hook ~engine:"ref" }

let create () =
  let dcache = Decision_cache.create () in
  let tr = Trace.create () in
  let t =
    { engine = `Pfm;
    lint_mode = `Warn;
    record = false;
    last_recorded = false;
    last_engine = "pfm";
    mount_cache = { slot = None };
    umount_cache = { slot = None };
    bind_cache = { slot = None };
    ppp_cache = { slot = None };
    nf_cache = { slot = None };
    mount_stats = fresh_stats ();
    umount_stats = fresh_stats ();
    bind_stats = fresh_stats ();
    nf_stats = fresh_stats ();
    ppp_stats = fresh_stats ();
    dcache;
    ch_mount = Decision_cache.register dcache "mount";
    ch_umount = Decision_cache.register dcache "umount";
    ch_bind = Decision_cache.register dcache "bind";
    ch_nf = Decision_cache.register dcache "nf_output";
    ch_ppp = Decision_cache.register dcache "ppp_ioctl";
    mounts_watch = { seen = None };
    binds_watch = { seen = None };
    ppp_watch = { seen = None };
    nf_watch = { seen = None };
    nf_gen = 0;
    mount_slot = fresh_slot ();
    umount_slot = fresh_slot ();
    bind_slot = fresh_slot ();
    ppp_slot = fresh_slot ();
    nf_slot = fresh_slot ();
    g_mount = [| 0 |];
    g_umount = [| 0 |];
    g_bind = [| 0 |];
    g_ppp = [| 0 |];
    g_nf = [| 0 |];
    trace = tr;
    traced = false;
    tk_mount = engine_keys tr "mount";
    tk_umount = engine_keys tr "umount";
    tk_bind = engine_keys tr "bind";
    tk_nf = engine_keys tr "nf_output";
    tk_ppp = engine_keys tr "ppp_ioctl";
      last_span = 0;
      opt_installed = Hashtbl.create 8;
      opt_status = Hashtbl.create 8;
      opt_rejects = 0;
      opt_log = [] }
  in
  (* Clearing last_span here (not per decision) keeps the unarmed hot
     path store-free: while armed every decision sets it in [conclude],
     while unarmed it stays 0. *)
  Trace.on_arm tr (fun armed ->
      t.traced <- armed;
      t.last_span <- 0);
  t

let engine t = t.engine
let set_engine t e = t.engine <- e
let engine_name t = match t.engine with `Pfm -> "pfm" | `Ref -> "ref"
let decision_engine_name t = t.last_engine
let lint_mode t = t.lint_mode
let set_lint_mode t m = t.lint_mode <- m

let record_mode t = t.record
let set_record t on = t.record <- on; t.last_recorded <- false
let last_recorded t = t.last_recorded

let lint_mode_name t =
  match t.lint_mode with `Warn -> "warn" | `Enforce -> "enforce"

let cache t = t.dcache
let trace t = t.trace
let last_span t = if t.last_span = 0 then None else Some t.last_span

let hooks t =
  [ ("mount", t.mount_stats); ("umount", t.umount_stats);
    ("bind", t.bind_stats); ("nf_output", t.nf_stats);
    ("ppp_ioctl", t.ppp_stats) ]

let stats = hooks

let reset_stats t =
  List.iter
    (fun (_, s) ->
      s.evals <- 0; s.allow <- 0; s.deny <- 0; s.reject <- 0;
      s.invalidations <- 0; s.insns <- 0)
    (hooks t)

let cached_program t name =
  let slot c = Option.map snd c.slot in
  match name with
  | "mount" -> slot t.mount_cache
  | "umount" -> slot t.umount_cache
  | "bind" -> slot t.bind_cache
  | "nf_output" -> slot t.nf_cache
  | "ppp_ioctl" -> slot t.ppp_cache
  | _ -> None

(* --- profile-guided recompilation --------------------------------------- *)

let log_opt t line = t.opt_log <- line :: t.opt_log

let drain_opt_log t =
  let l = List.rev t.opt_log in
  t.opt_log <- [];
  l

let opt_rejects t = t.opt_rejects

(* Gate and install one hook's optimized program.  The cache slot keeps
   its key, so a policy reload still recompiles from source (after which
   the installed optimization reads as stale in {!render}).  Soundness
   rests entirely on the gate: {!Pfm.verify} must accept AND
   {!Pfm_equiv.prove} must return [Equal].  A counterexample or an
   [Unknown] keeps the original program running and leaves an audit line
   — "trust me" never installs. *)
let optimize_slot t name (c : _ cache) =
  match c.slot with
  | None -> (name, "skipped: no compiled program")
  | Some (key, p) ->
      let already =
        match Hashtbl.find_opt t.opt_installed name with
        | Some (_, q) -> q == p
        | None -> false
      in
      if already then (name, "unchanged: optimization already installed")
      else begin
        match Pfm_opt.optimize p with
        | None -> (name, "unchanged: no profitable rewrite")
        | Some (q, rep) -> (
            let reject reason =
              t.opt_rejects <- t.opt_rejects + 1;
              Hashtbl.replace t.opt_status name ("rejected: " ^ reason);
              log_opt t (Printf.sprintf "opt %s rejected: %s" name reason);
              (name, "rejected: " ^ reason)
            in
            match Pfm.verify q with
            | Error e -> reject ("verify: " ^ Pfm.verify_error_to_string e)
            | Ok () -> (
                match Pfm_equiv.prove p q with
                | Pfm_equiv.Equal ->
                    c.slot <- Some (key, q);
                    Hashtbl.replace t.opt_installed name (p, q);
                    let d = Pfm_opt.report_to_string rep in
                    Hashtbl.replace t.opt_status name ("active: " ^ d);
                    log_opt t (Printf.sprintf "opt %s installed: %s" name d);
                    (name, "installed: " ^ d)
                | Pfm_equiv.Not_equal _ as r ->
                    reject ("refuted: " ^ Pfm_equiv.result_to_string r)
                | Pfm_equiv.Unknown m -> reject ("unproven: " ^ m)))
      end

let optimize t =
  [ optimize_slot t "mount" t.mount_cache;
    optimize_slot t "umount" t.umount_cache;
    optimize_slot t "bind" t.bind_cache;
    optimize_slot t "nf_output" t.nf_cache;
    optimize_slot t "ppp_ioctl" t.ppp_cache ]

let deoptimize_slot t name (c : _ cache) =
  match Hashtbl.find_opt t.opt_installed name with
  | None -> ()
  | Some (orig, q) ->
      (match c.slot with
       | Some (key, cur) when cur == q -> c.slot <- Some (key, orig)
       | _ -> () (* policy changed since: slot already holds fresh code *));
      Hashtbl.remove t.opt_installed name;
      Hashtbl.remove t.opt_status name;
      log_opt t (Printf.sprintf "opt %s reverted" name)

let deoptimize t =
  deoptimize_slot t "mount" t.mount_cache;
  deoptimize_slot t "umount" t.umount_cache;
  deoptimize_slot t "bind" t.bind_cache;
  deoptimize_slot t "nf_output" t.nf_cache;
  deoptimize_slot t "ppp_ioctl" t.ppp_cache

(* The status {!render} shows: "active" only while the optimized program
   is still the one the slot serves; a reload that recompiled from
   source demotes it to stale. *)
let opt_status_line t name (c : _ cache) =
  match Hashtbl.find_opt t.opt_status name with
  | None -> "none"
  | Some s -> (
      match Hashtbl.find_opt t.opt_installed name, c.slot with
      | Some (_, q), Some (_, cur) when cur == q -> s
      | Some _, _ -> "stale (policy changed)"
      | None, _ -> s)

let opt_statuses t =
  [ ("mount", opt_status_line t "mount" t.mount_cache);
    ("umount", opt_status_line t "umount" t.umount_cache);
    ("bind", opt_status_line t "bind" t.bind_cache);
    ("nf_output", opt_status_line t "nf_output" t.nf_cache);
    ("ppp_ioctl", opt_status_line t "ppp_ioctl" t.ppp_cache) ]

(* --- generation vectors ------------------------------------------------- *)

(* Refresh one watched Policy_state source and return the hook's current
   generation vector (in the hook's scratch array). *)
let source_gens watch st source ~key ~scratch =
  (match watch.seen with
   | Some k when k == key -> ()
   | Some _ ->
       Policy_state.bump_generation st source;
       watch.seen <- Some key
   | None -> watch.seen <- Some key);
  scratch.(0) <- Policy_state.generation st source;
  scratch

let mount_gens t (st : Policy_state.t) =
  source_gens t.mounts_watch st Policy_state.Mounts ~key:st.Policy_state.mounts
    ~scratch:t.g_mount

let umount_gens t (st : Policy_state.t) =
  source_gens t.mounts_watch st Policy_state.Mounts ~key:st.Policy_state.mounts
    ~scratch:t.g_umount

let bind_gens t (st : Policy_state.t) =
  source_gens t.binds_watch st Policy_state.Binds ~key:st.Policy_state.binds
    ~scratch:t.g_bind

let ppp_gens t (st : Policy_state.t) =
  source_gens t.ppp_watch st Policy_state.Ppp ~key:st.Policy_state.ppp
    ~scratch:t.g_ppp

(* The netfilter chain lives on the machine, not in Policy_state; its
   generation counter is dispatcher-local. *)
let nf_gens t ~rules ~policy =
  (match t.nf_watch.seen with
   | Some (r, p) when r == rules && p = policy -> ()
   | Some _ ->
       t.nf_gen <- t.nf_gen + 1;
       t.nf_watch.seen <- Some (rules, policy)
   | None -> t.nf_watch.seen <- Some (rules, policy));
  t.g_nf.(0) <- t.nf_gen;
  t.g_nf

(* --- cache + evaluation plumbing --------------------------------------- *)

let fetch cache st ~same ~key ~compile =
  match cache.slot with
  | Some (k, p) when same k key -> p
  | prev ->
      (match prev with
       | Some _ -> st.invalidations <- st.invalidations + 1
       | None -> ());
      let p = compile key in
      cache.slot <- Some (key, p);
      p

let run st (p : Pfm.program) ctx =
  let before = p.Pfm.retired in
  let v = Pfm.eval p ctx in
  st.insns <- st.insns + (p.Pfm.retired - before);
  v

let tally st (v : Pfm.verdict) =
  st.evals <- st.evals + 1;
  (match v with
   | Pfm.Allow -> st.allow <- st.allow + 1
   | Pfm.Deny -> st.deny <- st.deny + 1
   | Pfm.Reject -> st.reject <- st.reject + 1);
  v

let of_bool b = if b then Pfm.Allow else Pfm.Deny

(* Canonical argument-tuple encodings.  US (unit separator) cannot appear
   in any path, fstype or rendered integer, so the encoding is injective.
   Flag lists are canonicalized to their bitmask (order- and
   duplicate-insensitive); a ppp option is canonicalized to the one bit of
   it the decision reads (whether it is intrinsically safe). *)
let sep = "\x1f"

let deny_errno e (v : Pfm.verdict) =
  match v with Pfm.Allow -> None | Pfm.Deny | Pfm.Reject -> Some e

(* Close out a traced decision: the serving engine's histogram always sees
   the latency; a span is recorded only when spans are on ([stages] is
   oldest-first by then).  Callers only reach this while {!Trace.armed} —
   the untraced path skips it entirely ([last_span] was zeroed when the
   tracer disarmed). *)
let conclude t ek ~t0 ~stages ~verdict ~errno ~gen =
  let tr = t.trace in
  let fin = Trace.now tr in
  let k =
    match t.last_engine with
    | "cache" -> ek.ek_cache
    | "ref" -> ek.ek_ref
    | _ -> ek.ek_pfm
  in
  Trace.observe k ~ns:(fin - t0);
  t.last_span <-
    (match
       Trace.record_span tr ~hook:k.Trace.k_hook ~engine:k.Trace.k_engine
         ~verdict ~errno ~gen ~epoch:(Decision_cache.epoch t.dcache) ~start:t0
         ~finish:fin ~stages
     with
     | Some id -> id
     | None -> 0)

(* Refill a hook's front slot after a decision was served off the slow path
   (table hit or engine run).  Skipped while the cache is disabled, so a
   bypassed decision can never be replayed after re-enabling without the
   table having seen it. *)
let refill t (s : _ slot) ~gen ~sub ~ph ~x ~args ~verdict =
  if Decision_cache.enabled t.dcache then begin
    s.s_epoch <- Decision_cache.epoch t.dcache;
    s.s_gen <- gen;
    s.s_sub <- sub;
    s.s_ph <- ph;
    s.s_x <- x;
    s.s_args <- Some args;
    s.s_verdict <- verdict
  end

(* --- hook decisions ---------------------------------------------------- *)

let filter_rule (r : Policy_state.mount_rule) : Compile.mount_rule =
  { Compile.fm_source = r.Policy_state.mr_source;
    fm_target = r.Policy_state.mr_target;
    fm_fstype = r.Policy_state.mr_fstype;
    fm_flags = r.Policy_state.mr_flags;
    fm_user_only = (r.Policy_state.mr_mode = `User);
    fm_phase = r.Policy_state.mr_phase }

(* Every task-scoped decision is keyed on the caller's lifecycle phase —
   in the front slot, the table key, and the PFM context alike — so a
   phase transition makes exactly the transitioning task's stale entries
   unreachable (they age out) while other tasks keep hitting.  Callers
   without task context (bench, fuzz) default to [Phase.initial], which
   is verdict-neutral for unphased policies. *)

(* Every decide_* funnels its engine verdict through one of these two
   epilogues.  Caches and front slots were already fed the TRUE verdict
   by the time we get here, so record mode never pollutes them: only
   the value handed back to the hook is flipped, and [last_recorded]
   tells the hook layer to audit the would-deny. *)
let record_result t v =
  t.last_recorded <- t.record && v <> Pfm.Allow;
  t.last_recorded || v = Pfm.Allow

let record_nf_result t v =
  t.last_recorded <- t.record && v <> Pfm.Allow;
  if t.last_recorded then Netfilter.Accept else Compile.netfilter_of_verdict v

let decide_mount t ?(subject = 0) ?(phase = Phase.initial) (st : Policy_state.t)
    ~source ~target ~fstype ~flags =
  let t0 = if t.traced then Trace.now t.trace else 0 in
  let gens = mount_gens t st in
  let s = t.mount_slot in
  let ph = Phase.index phase in
  if
    Decision_cache.enabled t.dcache
    && s.s_epoch = Decision_cache.epoch t.dcache
    && s.s_gen = Array.unsafe_get gens 0
    && s.s_sub = subject && s.s_ph = ph
    && (match s.s_args with
        | Some (sr, tg, fs, fl) ->
            sr == source && tg == target && fs == fstype && fl == flags
        | None -> false)
  then begin
    Decision_cache.record_hit t.dcache t.ch_mount;
    t.last_engine <- "cache";
    let v = s.s_verdict in
    if t.traced then
      conclude t t.tk_mount ~t0
        ~stages:
          (if Trace.spans_enabled t.trace then [ ("slot", Trace.now t.trace - t0) ]
           else [])
        ~verdict:v ~errno:(deny_errno Errno.EPERM v)
        ~gen:(Array.unsafe_get gens 0);
    record_result t v
  end
  else begin
    let sp = t.traced && Trace.spans_enabled t.trace in
    let stages = if sp then [ ("slot", Trace.now t.trace - t0) ] else [] in
    let args =
      String.concat sep
        [ string_of_int ph; source; target; fstype;
          string_of_int (Compile.flags_mask flags) ]
    in
    let found = Decision_cache.find t.dcache t.ch_mount ~subject ~args ~gens in
    let stages = if sp then ("table", Trace.now t.trace - t0) :: stages else stages in
    let v, errno, stages =
      match found with
      | Some (v, e) ->
          t.last_engine <- "cache";
          (v, e, stages)
      | None ->
          let v =
            match t.engine with
            | `Ref ->
                of_bool
                  (Policy_state.mount_decision ~phase st ~source ~target ~fstype
                     ~flags)
            | `Pfm ->
                let p =
                  fetch t.mount_cache t.mount_stats ~same:( == )
                    ~key:st.Policy_state.mounts
                    ~compile:(fun rules ->
                      Compile.mount (List.map filter_rule rules))
                in
                run t.mount_stats p
                  (Compile.mount_ctx ~phase:ph ~source ~target ~fstype ~flags)
          in
          t.last_engine <- engine_name t;
          let v = tally t.mount_stats v in
          let e = deny_errno Errno.EPERM v in
          Decision_cache.add t.dcache t.ch_mount ~subject ~args ~gens ~verdict:v
            ~errno:e;
          (v, e,
           if sp then ("engine", Trace.now t.trace - t0) :: stages else stages)
    in
    refill t s ~gen:gens.(0) ~sub:subject ~ph ~x:0
      ~args:(source, target, fstype, flags) ~verdict:v;
    if t.traced then
      conclude t t.tk_mount ~t0 ~stages:(List.rev stages) ~verdict:v ~errno
        ~gen:gens.(0);
    record_result t v
  end

let decide_umount t ?(phase = Phase.initial) (st : Policy_state.t) ~target
    ~mounted_by ~ruid =
  let t0 = if t.traced then Trace.now t.trace else 0 in
  let gens = umount_gens t st in
  let s = t.umount_slot in
  let ph = Phase.index phase in
  if
    Decision_cache.enabled t.dcache
    && s.s_epoch = Decision_cache.epoch t.dcache
    && s.s_gen = Array.unsafe_get gens 0
    && s.s_sub = ruid && s.s_ph = ph && s.s_x = mounted_by
    && (match s.s_args with Some tg -> tg == target | None -> false)
  then begin
    Decision_cache.record_hit t.dcache t.ch_umount;
    t.last_engine <- "cache";
    let v = s.s_verdict in
    if t.traced then
      conclude t t.tk_umount ~t0
        ~stages:
          (if Trace.spans_enabled t.trace then [ ("slot", Trace.now t.trace - t0) ]
           else [])
        ~verdict:v ~errno:(deny_errno Errno.EPERM v)
        ~gen:(Array.unsafe_get gens 0);
    record_result t v
  end
  else begin
    let sp = t.traced && Trace.spans_enabled t.trace in
    let stages = if sp then [ ("slot", Trace.now t.trace - t0) ] else [] in
    let args =
      string_of_int ph ^ sep ^ target ^ sep ^ string_of_int mounted_by
    in
    let found =
      Decision_cache.find t.dcache t.ch_umount ~subject:ruid ~args ~gens
    in
    let stages = if sp then ("table", Trace.now t.trace - t0) :: stages else stages in
    let v, errno, stages =
      match found with
      | Some (v, e) ->
          t.last_engine <- "cache";
          (v, e, stages)
      | None ->
          let v =
            match t.engine with
            | `Ref ->
                of_bool
                  (Policy_state.umount_decision ~phase st ~target ~mounted_by
                     ~ruid)
            | `Pfm ->
                let p =
                  fetch t.umount_cache t.umount_stats ~same:( == )
                    ~key:st.Policy_state.mounts
                    ~compile:(fun rules ->
                      Compile.umount (List.map filter_rule rules))
                in
                run t.umount_stats p
                  (Compile.umount_ctx ~phase:ph ~target ~mounted_by ~ruid)
          in
          t.last_engine <- engine_name t;
          let v = tally t.umount_stats v in
          let e = deny_errno Errno.EPERM v in
          Decision_cache.add t.dcache t.ch_umount ~subject:ruid ~args ~gens
            ~verdict:v ~errno:e;
          (v, e,
           if sp then ("engine", Trace.now t.trace - t0) :: stages else stages)
    in
    refill t s ~gen:gens.(0) ~sub:ruid ~ph ~x:mounted_by ~args:target ~verdict:v;
    if t.traced then
      conclude t t.tk_umount ~t0 ~stages:(List.rev stages) ~verdict:v ~errno
        ~gen:gens.(0);
    record_result t v
  end

let decide_bind t ?(phase = Phase.initial) (st : Policy_state.t) ~port ~proto
    ~exe ~uid =
  let t0 = if t.traced then Trace.now t.trace else 0 in
  let gens = bind_gens t st in
  let s = t.bind_slot in
  let ph = Phase.index phase in
  let x = (port * 2) + (match proto with Bindconf.Tcp -> 0 | Bindconf.Udp -> 1) in
  if
    Decision_cache.enabled t.dcache
    && s.s_epoch = Decision_cache.epoch t.dcache
    && s.s_gen = Array.unsafe_get gens 0
    && s.s_sub = uid && s.s_ph = ph && s.s_x = x
    && (match s.s_args with Some e -> e == exe | None -> false)
  then begin
    Decision_cache.record_hit t.dcache t.ch_bind;
    t.last_engine <- "cache";
    let v = s.s_verdict in
    if t.traced then
      conclude t t.tk_bind ~t0
        ~stages:
          (if Trace.spans_enabled t.trace then [ ("slot", Trace.now t.trace - t0) ]
           else [])
        ~verdict:v ~errno:(deny_errno Errno.EACCES v)
        ~gen:(Array.unsafe_get gens 0);
    record_result t v
  end
  else begin
    let sp = t.traced && Trace.spans_enabled t.trace in
    let stages = if sp then [ ("slot", Trace.now t.trace - t0) ] else [] in
    let args =
      string_of_int ph ^ sep ^ string_of_int port ^ sep
      ^ Bindconf.proto_to_string proto ^ sep ^ exe
    in
    let found = Decision_cache.find t.dcache t.ch_bind ~subject:uid ~args ~gens in
    let stages = if sp then ("table", Trace.now t.trace - t0) :: stages else stages in
    let v, errno, stages =
      match found with
      | Some (v, e) ->
          t.last_engine <- "cache";
          (v, e, stages)
      | None ->
          let v =
            match t.engine with
            | `Ref ->
                of_bool (Policy_state.bind_allowed ~phase st ~port ~proto ~exe ~uid)
            | `Pfm ->
                let p =
                  fetch t.bind_cache t.bind_stats ~same:( == )
                    ~key:st.Policy_state.binds ~compile:(fun b -> Compile.bind b)
                in
                run t.bind_stats p
                  (Compile.bind_ctx ~phase:ph ~port ~proto ~exe ~uid)
          in
          t.last_engine <- engine_name t;
          let v = tally t.bind_stats v in
          let e = deny_errno Errno.EACCES v in
          Decision_cache.add t.dcache t.ch_bind ~subject:uid ~args ~gens
            ~verdict:v ~errno:e;
          (v, e,
           if sp then ("engine", Trace.now t.trace - t0) :: stages else stages)
    in
    refill t s ~gen:gens.(0) ~sub:uid ~ph ~x ~args:exe ~verdict:v;
    if t.traced then
      conclude t t.tk_bind ~t0 ~stages:(List.rev stages) ~verdict:v ~errno
        ~gen:gens.(0);
    record_result t v
  end

let decide_ppp_ioctl t ?(subject = 0) ?(phase = Phase.initial)
    (st : Policy_state.t) ~device ~opt =
  let t0 = if t.traced then Trace.now t.trace else 0 in
  let gens = ppp_gens t st in
  let s = t.ppp_slot in
  let ph = Phase.index phase in
  if
    Decision_cache.enabled t.dcache
    && s.s_epoch = Decision_cache.epoch t.dcache
    && s.s_gen = Array.unsafe_get gens 0
    && s.s_sub = subject && s.s_ph = ph
    && (match s.s_args with
        | Some (dv, op) -> dv == device && op == opt
        | None -> false)
  then begin
    Decision_cache.record_hit t.dcache t.ch_ppp;
    t.last_engine <- "cache";
    let v = s.s_verdict in
    if t.traced then
      conclude t t.tk_ppp ~t0
        ~stages:
          (if Trace.spans_enabled t.trace then [ ("slot", Trace.now t.trace - t0) ]
           else [])
        ~verdict:v ~errno:(deny_errno Errno.EPERM v)
        ~gen:(Array.unsafe_get gens 0);
    record_result t v
  end
  else begin
    let sp = t.traced && Trace.spans_enabled t.trace in
    let stages = if sp then [ ("slot", Trace.now t.trace - t0) ] else [] in
    let args =
      string_of_int ph ^ sep ^ device ^ sep
      ^ (if Protego_net.Ppp.option_is_safe opt then "1" else "0")
    in
    let found = Decision_cache.find t.dcache t.ch_ppp ~subject ~args ~gens in
    let stages = if sp then ("table", Trace.now t.trace - t0) :: stages else stages in
    let v, errno, stages =
      match found with
      | Some (v, e) ->
          t.last_engine <- "cache";
          (v, e, stages)
      | None ->
          let v =
            match t.engine with
            | `Ref ->
                of_bool (Policy_state.ppp_ioctl_decision ~phase st ~device ~opt)
            | `Pfm ->
                let p =
                  fetch t.ppp_cache t.ppp_stats ~same:( == )
                    ~key:st.Policy_state.ppp
                    ~compile:(fun pol -> Compile.ppp_ioctl pol)
                in
                run t.ppp_stats p (Compile.ppp_ctx ~phase:ph ~device ~opt)
          in
          t.last_engine <- engine_name t;
          let v = tally t.ppp_stats v in
          let e = deny_errno Errno.EPERM v in
          Decision_cache.add t.dcache t.ch_ppp ~subject ~args ~gens ~verdict:v
            ~errno:e;
          (v, e,
           if sp then ("engine", Trace.now t.trace - t0) :: stages else stages)
    in
    refill t s ~gen:gens.(0) ~sub:subject ~ph ~x:0 ~args:(device, opt) ~verdict:v;
    if t.traced then
      conclude t t.tk_ppp ~t0 ~stages:(List.rev stages) ~verdict:v ~errno
        ~gen:gens.(0);
    record_result t v
  end

let decide_nf_output t nf pkt ~origin =
  let t0 = if t.traced then Trace.now t.trace else 0 in
  let rules = Netfilter.rules nf Netfilter.Output in
  let policy = Netfilter.policy nf Netfilter.Output in
  let gens = nf_gens t ~rules ~policy in
  let s = t.nf_slot in
  if
    Decision_cache.enabled t.dcache
    && s.s_epoch = Decision_cache.epoch t.dcache
    && s.s_gen = Array.unsafe_get gens 0
    && (match s.s_args with
        | Some (p0, o0) -> p0 == pkt && o0 = origin
        | None -> false)
  then begin
    Decision_cache.record_hit t.dcache t.ch_nf;
    t.last_engine <- "cache";
    let v = s.s_verdict in
    if t.traced then
      conclude t t.tk_nf ~t0
        ~stages:
          (if Trace.spans_enabled t.trace then [ ("slot", Trace.now t.trace - t0) ]
           else [])
        ~verdict:v ~errno:None ~gen:(Array.unsafe_get gens 0);
    record_nf_result t v
  end
  else begin
    let sp = t.traced && Trace.spans_enabled t.trace in
    let stages = if sp then [ ("slot", Trace.now t.trace - t0) ] else [] in
    (* packet_ctx is the canonical integer encoding of everything the chain
       can match on; reuse it as the cache key. *)
    let ctx = Compile.packet_ctx pkt ~origin in
    (* Rendering the key string costs more than a short program run;
       skip it entirely while the cache is off (find/add would ignore
       it anyway) rather than taxing every engine decision with it. *)
    let cache_on = Decision_cache.enabled t.dcache in
    let args =
      if cache_on then
        String.concat sep (List.map string_of_int (Array.to_list ctx.Pfm.ints))
      else ""
    in
    let found =
      if cache_on then
        Decision_cache.find t.dcache t.ch_nf ~subject:0 ~args ~gens
      else None
    in
    let stages = if sp then ("table", Trace.now t.trace - t0) :: stages else stages in
    let v, stages =
      match found with
      | Some (v, _) ->
          t.last_engine <- "cache";
          (v, stages)
      | None ->
          let v =
            match t.engine with
            | `Ref ->
                Compile.verdict_of_netfilter
                  (Netfilter.walk nf Netfilter.Output pkt ~origin)
            | `Pfm ->
                let p =
                  fetch t.nf_cache t.nf_stats
                    ~same:(fun (r1, p1) (r2, p2) -> r1 == r2 && p1 = p2)
                    ~key:(rules, policy)
                    ~compile:(fun (rules, policy) ->
                      Compile.netfilter ~rules ~policy)
                in
                run t.nf_stats p ctx
          in
          t.last_engine <- engine_name t;
          let v = tally t.nf_stats v in
          Decision_cache.add t.dcache t.ch_nf ~subject:0 ~args ~gens ~verdict:v
            ~errno:None;
          (v, if sp then ("engine", Trace.now t.trace - t0) :: stages else stages)
    in
    refill t s ~gen:gens.(0) ~sub:0 ~ph:0 ~x:0 ~args:(pkt, origin) ~verdict:v;
    if t.traced then
      conclude t t.tk_nf ~t0 ~stages:(List.rev stages) ~verdict:v ~errno:None
        ~gen:gens.(0);
    record_nf_result t v
  end

(* --- load-time policy lint --------------------------------------------- *)

let lint_input ?(chains = []) (st : Policy_state.t) =
  {
    Policy_lint.mounts = List.map filter_rule st.Policy_state.mounts;
    binds = st.Policy_state.binds;
    delegation = st.Policy_state.delegation;
    accounts =
      {
        Policy_lint.user_names =
          List.map
            (fun (u : Policy_state.account_user) ->
              (u.Policy_state.au_name, u.Policy_state.au_uid))
            st.Policy_state.users;
        group_names =
          List.map
            (fun (g : Policy_state.account_group) -> g.Policy_state.ag_name)
            st.Policy_state.groups;
      };
    ppp = Some st.Policy_state.ppp;
    chains;
  }

let lint_report ?chains st = Policy_lint.lint (lint_input ?chains st)

(* Findings that bear on installing [sources] — each source's own plus
   the cross-source checks.  A delegation typo must not veto a bind-map
   install, so the gate never looks wider than the write at hand. *)
let relevant findings ~sources =
  List.filter
    (fun (f : Policy_lint.finding) ->
      List.mem f.Policy_lint.source sources || f.Policy_lint.source = "cross")
    findings

(* The load-time gate: lint the candidate state a /proc policy write
   would install.  [`Refused fs] (enforce mode, error-severity findings
   among the written sources) means the caller must not apply the write;
   [`Warned fs] means apply but tag the audit trail. *)
let check_policy_load t ?chains st ~sources =
  let findings = relevant (lint_report ?chains st) ~sources in
  if t.lint_mode = `Enforce && Policy_lint.has_errors findings then
    `Refused findings
  else if findings <> [] then `Warned findings
  else `Clean

(* --- /proc/protego/filter_stats ---------------------------------------- *)

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b "engine ";
  Buffer.add_string b (engine_name t);
  Buffer.add_char b '\n';
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf
           "hook %s evals %d allow %d deny %d reject %d invalidations %d insns %d\n"
           name s.evals s.allow s.deny s.reject s.invalidations s.insns))
    (hooks t);
  List.iter
    (fun (name, status) ->
      Buffer.add_string b (Printf.sprintf "opt %s %s\n" name status))
    (opt_statuses t);
  Buffer.add_string b (Printf.sprintf "opt_rejects %d\n" t.opt_rejects);
  Buffer.contents b

let handle_write t contents =
  match String.trim contents with
  | "reset" -> reset_stats t; Ok ()
  | "engine pfm" -> t.engine <- `Pfm; Ok ()
  | "engine ref" -> t.engine <- `Ref; Ok ()
  | "optimize" ->
      (* Gate rejections are not write errors: the original program
         keeps serving and the rejection is audited via the opt log. *)
      ignore (optimize t : (string * string) list);
      Ok ()
  | "deoptimize" -> deoptimize t; Ok ()
  | other -> Error ("filter_stats: unknown command: " ^ other)

(* --- /proc/protego/cache_stats ------------------------------------------ *)

let render_cache t = Decision_cache.render t.dcache
let handle_cache_write t contents = Decision_cache.handle_write t.dcache contents

(* --- /proc/protego/trace and /proc/protego/latency ---------------------- *)

let render_trace t = Trace.render_trace t.trace
let handle_trace_write t contents = Trace.handle_trace_write t.trace contents
let render_latency t = Trace.render_latency t.trace

let handle_latency_write t contents =
  Trace.handle_latency_write t.trace contents
