open Protego_base
open Protego_kernel
open Ktypes
module Netfilter = Protego_net.Netfilter
module Packet = Protego_net.Packet
module Sudoers = Protego_policy.Sudoers
module Bindconf = Protego_policy.Bindconf
module Pppopts = Protego_policy.Pppopts

type t = {
  machine : machine;
  state : Policy_state.t;
  dispatch : Pfm_dispatch.t;
}

let state t = t.state
let dispatch t = t.dispatch

let ensure_recent_auth m (st : Policy_state.t) task =
  let timeout = st.delegation.Sudoers.timestamp_timeout in
  let task_fresh =
    match task.cred.last_auth with
    | Some at -> m.now -. at <= timeout
    | None -> false
  in
  let tty_fresh =
    (* sudo's rule: a password entered on this terminal within the timeout
       counts, whichever process entered it. *)
    match task.tty with
    | Some tty -> (
        match List.assoc_opt (tty, task.cred.ruid) m.tty_auth with
        | Some at -> m.now -. at <= timeout
        | None -> false)
    | None -> false
  in
  task_fresh || tty_fresh
  ||
  match m.auth_agent with
  | Some agent -> agent m task task.cred.ruid
  | None -> false

let default_raw_socket_rules =
  let rule matches target comment = { Netfilter.matches; target; comment } in
  [ rule [ Netfilter.Origin_raw; Netfilter.Proto Packet.Icmp;
           Netfilter.Icmp_type Packet.Echo_request ]
      Netfilter.Accept "ping probes";
    rule [ Netfilter.Origin_raw; Netfilter.Proto Packet.Icmp;
           Netfilter.Icmp_type Packet.Echo_reply ]
      Netfilter.Accept "ping replies";
    rule [ Netfilter.Origin_raw; Netfilter.Proto Packet.Icmp;
           Netfilter.Icmp_type Packet.Timestamp_request ]
      Netfilter.Accept "mtr timestamp probes";
    rule [ Netfilter.Origin_raw; Netfilter.Proto Packet.Udp;
           Netfilter.Dst_port { lo = 33434; hi = 33534 } ]
      Netfilter.Accept "traceroute probes";
    rule [ Netfilter.Origin_packet; Netfilter.Proto (Packet.Other 0x0806) ]
      Netfilter.Accept "arping ARP frames";
    rule [ Netfilter.Origin_raw ] Netfilter.Drop "unprivileged raw default";
    rule [ Netfilter.Origin_packet ] Netfilter.Drop "unprivileged packet default" ]

(* --- hooks ------------------------------------------------------------ *)

let stock = Security.stock_linux

(* Record-mode observation trail.  While /proc/protego/record is on,
   every filter-backed decision leaves an extra kaudit entry (op
   ["record-<hook>"]) whose object is a canonical space-separated
   key=value descriptor of the full decision arguments and serving
   phase — the policy synthesizer's raw input.  [verdict=allow] marks a
   genuine allow, [verdict=recorded] a would-deny the permissive mode
   flipped; none of the values contain spaces. *)
let record_emit disp m task ~hook ~subject ~desc =
  if Pfm_dispatch.record_mode disp then
    let verdict =
      if Pfm_dispatch.last_recorded disp then "recorded" else "allow"
    in
    Audit.emit m task ~op:("record-" ^ hook)
      ~obj:
        (Printf.sprintf "phase=%s subject=%d verdict=%s %s"
           (Phase.to_string task.sec.phase) subject verdict desc)
      ~allowed:true

let sb_mount disp st m task ~source ~target ~fstype ~flags =
  match stock.sb_mount m task ~source ~target ~fstype ~flags with
  | Ok () -> Ok ()
  | Error _ ->
      let target = Vfs.normalize ~cwd:task.cwd target in
      let obj = source ^ " on " ^ target in
      let allowed =
        Pfm_dispatch.decide_mount disp ~subject:task.cred.ruid
          ~phase:task.sec.phase st ~source ~target ~fstype ~flags
      in
      record_emit disp m task ~hook:"mount" ~subject:task.cred.ruid
        ~desc:
          (Printf.sprintf "source=%s target=%s fstype=%s flags=%s" source
             target fstype
             (Policy_state.flags_to_string flags));
      Audit.emit ~engine:(Pfm_dispatch.decision_engine_name disp)
        ?span:(Pfm_dispatch.last_span disp) m task ~op:"mount" ~obj ~allowed;
      if allowed then Ok () else Error Errno.EPERM

let sb_umount disp st m task ~target =
  match stock.sb_umount m task ~target with
  | Ok () -> Ok ()
  | Error _ -> (
      let target = Vfs.normalize ~cwd:task.cwd target in
      match List.find_opt (fun mnt -> mnt.mnt_target = target) m.mounts with
      | None -> Error Errno.EINVAL
      | Some mnt ->
          let allowed =
            Pfm_dispatch.decide_umount disp ~phase:task.sec.phase st ~target
              ~mounted_by:mnt.mnt_by ~ruid:task.cred.ruid
          in
          record_emit disp m task ~hook:"umount" ~subject:task.cred.ruid
            ~desc:
              (Printf.sprintf "target=%s mounted_by=%d" target mnt.mnt_by);
          Audit.emit ~engine:(Pfm_dispatch.decision_engine_name disp)
            ?span:(Pfm_dispatch.last_span disp) m task ~op:"umount" ~obj:target
            ~allowed;
          if allowed then Ok () else Error Errno.EPERM)

let socket_create _st _m _task _domain _stype _proto =
  (* Raw and packet sockets no longer require CAP_NET_RAW; Netstack marks
     them unprivileged and the netfilter origin rules confine their
     traffic. *)
  Ok ()

let socket_bind disp st m task sock _addr port =
  if sock.sock_netns <> 0 then Ok ()
  else if port = 0 || not (Security.privileged_port port) then Ok ()
  else if stock.capable m task Cap.CAP_NET_BIND_SERVICE then Ok ()
  else
    let proto =
      match sock.stype with
      | Sock_stream -> Some Bindconf.Tcp
      | Sock_dgram -> Some Bindconf.Udp
      | Sock_raw -> None
    in
    match proto with
    | None -> Error Errno.EACCES
    | Some proto ->
        let obj =
          Printf.sprintf "port %d/%s by %s" port
            (Bindconf.proto_to_string proto) task.exe_path
        in
        let allowed =
          Pfm_dispatch.decide_bind disp ~phase:task.sec.phase st ~port ~proto
            ~exe:task.exe_path ~uid:task.cred.euid
        in
        record_emit disp m task ~hook:"bind" ~subject:task.cred.euid
          ~desc:
            (Printf.sprintf "port=%d proto=%s exe=%s" port
               (Bindconf.proto_to_string proto) task.exe_path);
        Audit.emit ~engine:(Pfm_dispatch.decision_engine_name disp)
          ?span:(Pfm_dispatch.last_span disp) m task ~op:"bind" ~obj ~allowed;
        if allowed then Ok () else Error Errno.EACCES

let names_for_delegation st task =
  match Policy_state.name_of_uid st task.cred.ruid with
  | None -> None
  | Some user -> Some (user, Policy_state.group_names_of_user st user)

(* Authenticate as required by a rule set: sudo-style rules want a recent
   proof of the *invoker's* identity; TARGETPW (su-style) rules want the
   *target's* password, asked fresh each time. *)
let auth_for m st task ~targetpw ~target_uid ~nopasswd =
  if nopasswd then true
  else if targetpw then
    match m.auth_agent with
    | Some agent -> agent m task target_uid
    | None -> false
  else ensure_recent_auth m st task

let delegation_view (st : Policy_state.t) ~targetpw =
  let wants r = List.mem Sudoers.Targetpw r.Sudoers.tags = targetpw in
  { st.delegation with
    Sudoers.rules = List.filter wants st.delegation.Sudoers.rules }

(* A setuid transition DAC refuses is judged against two rule families:
   sudo-style rules authenticated by the invoker's own password, and
   TARGETPW (su-style) rules authenticated by the target's.  Unrestricted
   transitions authenticate and apply immediately; command-restricted ones
   defer to exec (§4.3), where the specific command selects the rule — and
   with it the NOPASSWD/SETENV tags and which password to ask for. *)
let task_fix_setuid st m task ~target =
  if Security.setuid_allowed_by_dac task.cred ~target then Ok Setuid_apply
  else
    match (names_for_delegation st task, Policy_state.name_of_uid st target) with
    | None, _ | _, None -> Error Errno.EPERM
    | Some (user, groups), Some target_name -> (
        let self_view = delegation_view st ~targetpw:false in
        let target_view = delegation_view st ~targetpw:true in
        let self_bins =
          Sudoers.allowed_binaries self_view ~user ~groups ~target:target_name
        in
        let target_bins =
          Sudoers.allowed_binaries target_view ~user ~groups ~target:target_name
        in
        let audit allowed detail =
          Audit.emit m task ~op:"setuid"
            ~obj:(Printf.sprintf "%s -> %s (%s)" user target_name detail)
            ~allowed
        in
        match (self_bins, target_bins) with
        | `Nothing, `Nothing ->
            audit false "no rule";
            Error Errno.EPERM
        | `Unrestricted, _ ->
            let nopasswd =
              match
                Sudoers.check self_view ~user ~groups ~target:target_name
                  ~command:None
              with
              | Sudoers.Allowed { nopasswd; _ } -> nopasswd
              | Sudoers.Denied -> false
            in
            if auth_for m st task ~targetpw:false ~target_uid:target ~nopasswd
            then begin
              audit true "unrestricted";
              Ok Setuid_apply
            end
            else begin
              audit false "authentication failed";
              Error Errno.EPERM
            end
        | `Nothing, `Unrestricted ->
            (* Pure su: prove the target's identity, then switch fully. *)
            if auth_for m st task ~targetpw:true ~target_uid:target
                 ~nopasswd:false
            then begin
              audit true "target password";
              Ok Setuid_apply
            end
            else begin
              audit false "target authentication failed";
              Error Errno.EPERM
            end
        | (`Only _ | `Nothing), (`Only _ | `Unrestricted | `Nothing) ->
            let bins = function `Only l -> l | `Unrestricted | `Nothing -> [] in
            let gate =
              if target_bins = `Unrestricted then []
              else List.sort_uniq compare (bins self_bins @ bins target_bins)
            in
            audit true "deferred to exec";
            Ok
              (Setuid_defer
                 { ps_target = target; ps_binaries = gate; ps_keep_env = false }))

let task_fix_setgid st m task ~target =
  if Security.setgid_allowed_by_dac task.cred ~target then Ok ()
  else
    match Policy_state.group_of_gid st target with
    | None -> Error Errno.EPERM
    | Some group -> (
        match Policy_state.name_of_uid st task.cred.ruid with
        | Some user when List.mem user group.Policy_state.ag_members -> Ok ()
        | Some _ | None -> (
            (* newgrp's password-protected groups: the caller must supply
               the group password (§4.3). *)
            match group.Policy_state.ag_password with
            | None -> Error Errno.EPERM
            | Some hash -> (
                match m.password_source task.cred.ruid with
                | Some typed
                  when Protego_policy.Pwdb.verify_password ~hash typed ->
                    Ok ()
                | Some _ | None -> Error Errno.EPERM)))

(* Exec of a task with a pending transition: the requested binary (and its
   arguments) must match a delegation rule; that rule's tags decide whether
   and how to authenticate, and whether the environment survives. *)
let bprm_check st m task ~path ~argv inode =
  match stock.bprm_check m task ~path ~argv inode with
  | Error _ as e -> e
  | Ok () -> (
      match task.sec.pending with
      | None -> Ok ()
      | Some p ->
          if p.ps_binaries <> [] && not (List.mem path p.ps_binaries) then
            Error Errno.EACCES
          else
            let args = match argv with [] -> [] | _ :: rest -> rest in
            (match
               ( names_for_delegation st task,
                 Policy_state.name_of_uid st p.ps_target )
             with
            | Some (user, groups), Some target_name -> (
                let decide ~targetpw =
                  match
                    Sudoers.check (delegation_view st ~targetpw) ~user ~groups
                      ~target:target_name ~command:(Some (path, args))
                  with
                  | Sudoers.Allowed { nopasswd; setenv } ->
                      if
                        auth_for m st task ~targetpw ~target_uid:p.ps_target
                          ~nopasswd
                      then Some setenv
                      else None
                  | Sudoers.Denied -> None
                in
                let verdict =
                  match decide ~targetpw:false with
                  | Some _ as v -> v
                  | None -> decide ~targetpw:true
                in
                match verdict with
                | Some setenv ->
                    Audit.emit m task ~op:"exec-as"
                      ~obj:(Printf.sprintf "%s as %s" path target_name)
                      ~allowed:true;
                    task.sec.pending <- Some { p with ps_keep_env = setenv };
                    Ok ()
                | None ->
                    Audit.emit m task ~op:"exec-as"
                      ~obj:(Printf.sprintf "%s as %s" path target_name)
                      ~allowed:false;
                    Error Errno.EACCES)
            | None, _ | _, None -> Error Errno.EACCES))

let inode_permission st m task ~path inode access =
  match stock.inode_permission m task ~path inode access with
  | Error _ as e -> e
  | Ok () ->
      if access = Mode.R || access = Mode.W then (
        match Policy_state.file_acl_allows st ~path ~exe:task.exe_path with
        | Some false ->
            Audit.emit m task ~op:"file-acl"
              ~obj:(path ^ " by " ^ task.exe_path) ~allowed:false;
            Error Errno.EACCES
        | Some true | None ->
            if
              access = Mode.R
              && Policy_state.needs_reauth_to_read st path
              && task.cred.euid <> 0
            then
              if ensure_recent_auth m st task then Ok ()
              else begin
                Audit.emit m task ~op:"shadow-read" ~obj:path ~allowed:false;
                Error Errno.EACCES
              end
            else Ok ())
      else Ok ()

let file_open st m task ~path file =
  match stock.file_open m task ~path file with
  | Error _ as e -> e
  | Ok () ->
      (* A handle on a fragmented shadow file may not be inherited. *)
      if Policy_state.needs_reauth_to_read st path then file.cloexec <- true;
      Ok ()

let is_ppp_device dev =
  let prefix = "ppp" in
  String.length dev >= String.length prefix
  && String.sub dev 0 (String.length prefix) = prefix

let file_ioctl disp st m task req =
  match stock.file_ioctl m task req with
  | Ok () -> Ok ()
  | Error _ as stock_denial -> (
      match req with
      | Ioctl_route_add entry ->
          if
            Pppopts.user_routes_allowed st.Policy_state.ppp
            && is_ppp_device entry.Protego_net.Route.device
            && Protego_net.Route.conflicts_with m.routes
                 entry.Protego_net.Route.dest
               = None
          then Ok ()
          else Error Errno.EPERM
      | Ioctl_route_del dest -> (
          let owned =
            List.find_opt
              (fun (e : Protego_net.Route.entry) ->
                Protego_net.Ipaddr.Cidr.equal e.dest dest
                && e.owner_uid = Some task.cred.ruid)
              (Protego_net.Route.entries m.routes)
          in
          match owned with Some _ -> Ok () | None -> stock_denial)
      | Ioctl_modem_config { ioctl_dev; ppp_opt } ->
          let allowed =
            Pfm_dispatch.decide_ppp_ioctl disp ~subject:task.cred.ruid
              ~phase:task.sec.phase st ~device:ioctl_dev ~opt:ppp_opt
          in
          record_emit disp m task ~hook:"ppp" ~subject:task.cred.ruid
            ~desc:
              (Printf.sprintf "device=%s safe=%s" ioctl_dev
                 (if Protego_net.Ppp.option_is_safe ppp_opt then "1" else "0"));
          if allowed then Ok () else Error Errno.EPERM
      | Ioctl_dm_table_status _ ->
          (* Interface redesign, not policy: the ioctl stays root-only and
             unprivileged readers use /sys (§4.1). *)
          stock_denial
      | Ioctl_video_modeset _ | Ioctl_tty_getattr -> stock_denial)

(* --- /proc and /sys interfaces ---------------------------------------- *)

(* Lint the Output chain alongside the /proc-loaded sources: the
   cross-source checks need it, and /proc/protego/lint reports on the
   whole loaded policy. *)
let current_chains m =
  [ ("output", Netfilter.rules m.netfilter Netfilter.Output,
     Netfilter.policy m.netfilter Netfilter.Output) ]

(* A policy write passes the load-time lint gate before it sticks: apply
   the parsed value, lint the resulting state, and roll back (EPERM,
   audited) if the dispatcher is in enforce mode and the written sources
   carry error-severity findings.  In warn mode defective policy loads,
   but tagged in the audit log — the differential-rollout posture. *)
let gated_load m st disp task ~file ~sources ~apply ~rollback =
  apply ();
  let verdict =
    Pfm_dispatch.check_policy_load disp ~chains:(current_chains m) st ~sources
  in
  let describe fs =
    let errors =
      List.length
        (List.filter
           (fun f ->
             f.Protego_analysis.Policy_lint.severity
             = Protego_analysis.Policy_lint.Error)
           fs)
    in
    Printf.sprintf "%s (%d finding(s), %d error(s))" file (List.length fs)
      errors
  in
  match verdict with
  | `Clean -> Ok ()
  | `Warned fs ->
      Audit.emit ~engine:(Pfm_dispatch.engine_name disp) m task
        ~op:"policy-load" ~obj:(describe fs) ~allowed:true;
      List.iter
        (fun f ->
          log_dmesg m "protego: lint: %s"
            (Protego_analysis.Policy_lint.finding_to_string f))
        fs;
      Ok ()
  | `Refused fs ->
      rollback ();
      Audit.emit ~engine:(Pfm_dispatch.engine_name disp) m task
        ~op:"policy-load" ~obj:(describe fs) ~allowed:false;
      List.iter
        (fun f ->
          log_dmesg m "protego: lint refused %s: %s" file
            (Protego_analysis.Policy_lint.finding_to_string f))
        fs;
      Error Errno.EPERM

let install_proc_files m st disp =
  let kt = Machine.kernel_task m in
  let _ = Machine.mkdir_p m kt "/proc/protego" () in
  let add path ~read ~write =
    ignore (Machine.add_vnode m kt ~path ~mode:0o600 ~read ~write ())
  in
  add "/proc/protego/mount_whitelist"
    ~read:(fun _m _t -> Ok (Policy_state.mounts_to_string st.Policy_state.mounts))
    ~write:(fun m t contents ->
      match Policy_state.parse_mounts contents with
      | Ok rules ->
          let prev = st.Policy_state.mounts in
          gated_load m st disp t ~file:"mount_whitelist" ~sources:[ "mounts" ]
            ~apply:(fun () ->
              st.Policy_state.mounts <- rules;
              Policy_state.bump_generation st Policy_state.Mounts)
            ~rollback:(fun () -> st.Policy_state.mounts <- prev)
      | Error msg ->
          log_dmesg m "protego: mount_whitelist rejected: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/record"
    ~read:(fun _m _t ->
      Ok ((if Pfm_dispatch.record_mode disp then "on" else "off") ^ "\n"))
    ~write:(fun m t contents ->
      match String.trim contents with
      | "on" | "off" ->
          let on = String.trim contents = "on" in
          Pfm_dispatch.set_record disp on;
          Audit.emit m t ~op:"record-mode"
            ~obj:(if on then "on" else "off")
            ~allowed:true;
          log_dmesg m "protego: record mode %s" (if on then "on" else "off");
          Ok ()
      | other ->
          log_dmesg m "protego: record takes on|off, got %S" other;
          Error Errno.EINVAL);
  add "/proc/protego/bind_map"
    ~read:(fun _m _t -> Ok (Bindconf.to_string st.Policy_state.binds))
    ~write:(fun m t contents ->
      match Bindconf.parse contents with
      | Ok entries ->
          let prev = st.Policy_state.binds in
          gated_load m st disp t ~file:"bind_map" ~sources:[ "binds" ]
            ~apply:(fun () ->
              st.Policy_state.binds <- entries;
              Policy_state.bump_generation st Policy_state.Binds)
            ~rollback:(fun () -> st.Policy_state.binds <- prev)
      | Error msg ->
          log_dmesg m "protego: bind_map rejected: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/delegation"
    ~read:(fun _m _t -> Ok (Sudoers.to_string st.Policy_state.delegation))
    ~write:(fun m t contents ->
      match Sudoers.parse contents with
      | Ok rules ->
          let prev = st.Policy_state.delegation in
          gated_load m st disp t ~file:"delegation" ~sources:[ "delegation" ]
            ~apply:(fun () ->
              st.Policy_state.delegation <- rules;
              Policy_state.bump_generation st Policy_state.Delegation)
            ~rollback:(fun () -> st.Policy_state.delegation <- prev)
      | Error msg ->
          log_dmesg m "protego: delegation rejected: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/accounts"
    ~read:(fun _m _t ->
      Ok
        (Policy_state.accounts_to_string st.Policy_state.users
           st.Policy_state.groups))
    ~write:(fun m t contents ->
      match Policy_state.parse_accounts contents with
      | Ok (users, groups) ->
          let prev_u = st.Policy_state.users
          and prev_g = st.Policy_state.groups in
          (* New accounts re-resolve names in the delegation and bind
             sources, so the gate re-checks those. *)
          gated_load m st disp t ~file:"accounts"
            ~sources:[ "delegation" ]
            ~apply:(fun () ->
              st.Policy_state.users <- users;
              st.Policy_state.groups <- groups;
              Policy_state.bump_generation st Policy_state.Accounts)
            ~rollback:(fun () ->
              st.Policy_state.users <- prev_u;
              st.Policy_state.groups <- prev_g)
      | Error msg ->
          log_dmesg m "protego: accounts rejected: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/audit"
    ~read:(fun m _t -> Ok (Audit.render m))
    ~write:(fun m _t _s ->
      Audit.clear m;
      Ok ());
  add "/proc/protego/ppp_policy"
    ~read:(fun _m _t -> Ok (Pppopts.to_string st.Policy_state.ppp))
    ~write:(fun m t contents ->
      match Pppopts.parse contents with
      | Ok policy ->
          let prev = st.Policy_state.ppp in
          gated_load m st disp t ~file:"ppp_policy" ~sources:[ "ppp" ]
            ~apply:(fun () ->
              st.Policy_state.ppp <- policy;
              Policy_state.bump_generation st Policy_state.Ppp)
            ~rollback:(fun () -> st.Policy_state.ppp <- prev)
      | Error msg ->
          log_dmesg m "protego: ppp_policy rejected: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/lint"
    ~read:(fun m _t ->
      let findings =
        Pfm_dispatch.lint_report ~chains:(current_chains m) st
      in
      Ok
        (Printf.sprintf "mode %s\n%s"
           (Pfm_dispatch.lint_mode_name disp)
           (Protego_analysis.Policy_lint.render findings)))
    ~write:(fun m _t contents ->
      match String.trim contents with
      | "mode warn" ->
          Pfm_dispatch.set_lint_mode disp `Warn;
          Ok ()
      | "mode enforce" ->
          Pfm_dispatch.set_lint_mode disp `Enforce;
          Ok ()
      | other ->
          log_dmesg m "protego: lint: unknown command: %s" other;
          Error Errno.EINVAL);
  add "/proc/protego/phase"
    ~read:(fun m _t ->
      (* One line per live task: "pid <pid> phase <name>". *)
      let b = Buffer.create 128 in
      List.iter
        (fun (pid, (task : task)) ->
          Buffer.add_string b
            (Printf.sprintf "pid %d phase %s\n" pid
               (Protego_base.Phase.to_string task.sec.phase)))
        m.tasks;
      Ok (Buffer.contents b))
    ~write:(fun m t contents ->
      (* "pid <pid> <phase>": advance the task's phase.  The transition
         machinery is one-way; a write naming an earlier phase is a
         loosening attempt — refused with EPERM and audited, exactly
         like a denied hook. *)
      match String.split_on_char ' ' (String.trim contents) with
      | [ "pid"; pid_s; phase_s ] -> (
          match
            (int_of_string_opt pid_s, Protego_base.Phase.of_string phase_s)
          with
          | Some pid, Some ph -> (
              match Ktypes.find_task m pid with
              | None -> Error Errno.ESRCH
              | Some target ->
                  let cur = target.sec.phase in
                  if Protego_base.Phase.compare ph cur < 0 then begin
                    Audit.emit m t ~op:"phase"
                      ~obj:
                        (Printf.sprintf "pid %d %s -> %s (loosening refused)"
                           pid
                           (Protego_base.Phase.to_string cur)
                           (Protego_base.Phase.to_string ph))
                      ~allowed:false;
                    Error Errno.EPERM
                  end
                  else begin
                    target.sec.phase <- Protego_base.Phase.advance cur ph;
                    Audit.emit m t ~op:"phase"
                      ~obj:
                        (Printf.sprintf "pid %d %s -> %s" pid
                           (Protego_base.Phase.to_string cur)
                           (Protego_base.Phase.to_string ph))
                      ~allowed:true;
                    Ok ()
                  end)
          | _ ->
              log_dmesg m "protego: phase: expected \"pid <pid> <phase>\"";
              Error Errno.EINVAL)
      | _ ->
          log_dmesg m "protego: phase: expected \"pid <pid> <phase>\"";
          Error Errno.EINVAL);
  add "/proc/protego/filter_stats"
    ~read:(fun _m _t -> Ok (Pfm_dispatch.render disp))
    ~write:(fun m t contents ->
      match Pfm_dispatch.handle_write disp contents with
      | Ok () ->
          (* optimize/deoptimize queue install/reject/revert lines; a
             rejected rewrite is an audited event, not a write error *)
          let rejected line =
            let pat = " rejected: " and n = String.length line in
            let pn = String.length pat in
            let rec scan i =
              i + pn <= n && (String.sub line i pn = pat || scan (i + 1))
            in
            scan 0
          in
          List.iter
            (fun line ->
              log_dmesg m "protego: %s" line;
              Audit.emit ~engine:(Pfm_dispatch.engine_name disp) m t
                ~op:"filter-opt" ~obj:line ~allowed:(not (rejected line)))
            (Pfm_dispatch.drain_opt_log disp);
          Ok ()
      | Error msg ->
          log_dmesg m "protego: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/cache_stats"
    ~read:(fun _m _t -> Ok (Pfm_dispatch.render_cache disp))
    ~write:(fun m _t contents ->
      match Pfm_dispatch.handle_cache_write disp contents with
      | Ok () -> Ok ()
      | Error msg ->
          log_dmesg m "protego: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/trace"
    ~read:(fun _m _t -> Ok (Pfm_dispatch.render_trace disp))
    ~write:(fun m _t contents ->
      match Pfm_dispatch.handle_trace_write disp contents with
      | Ok () -> Ok ()
      | Error msg ->
          log_dmesg m "protego: %s" msg;
          Error Errno.EINVAL);
  add "/proc/protego/latency"
    ~read:(fun _m _t -> Ok (Pfm_dispatch.render_latency disp))
    ~write:(fun m _t contents ->
      match Pfm_dispatch.handle_latency_write disp contents with
      | Ok () -> Ok ()
      | Error msg ->
          log_dmesg m "protego: %s" msg;
          Error Errno.EINVAL)

let install_sysfs_dm_files m =
  let kt = Machine.kernel_task m in
  Hashtbl.iter
    (fun path dev ->
      match dev with
      | Dev_dm meta ->
          let base = Filename.basename path in
          let dir = "/sys/block/" ^ base ^ "/protego" in
          ignore (Machine.mkdir_p m kt dir ());
          ignore
            (Machine.add_vnode m kt ~path:(dir ^ "/device") ~mode:0o444
               ~read:(fun _m _t -> Ok (meta.dm_underlying ^ "\n"))
               ~write:(Machine.vnode_read_only (fun _ _ -> Ok "")) ())
      | Dev_null | Dev_tty _ | Dev_serial _ | Dev_ppp | Dev_block _
      | Dev_video _ -> ())
    m.devices

let install_netfilter_rules m =
  List.iter (fun r -> Netfilter.append m.netfilter Netfilter.Output r)
    default_raw_socket_rules

let install m =
  let st = Policy_state.create () in
  let disp = Pfm_dispatch.create () in
  let ops =
    { stock with
      lsm_name = "protego";
      sb_mount = (fun m task -> sb_mount disp st m task);
      sb_umount = (fun m task -> sb_umount disp st m task);
      socket_create = socket_create st;
      socket_bind = (fun m task -> socket_bind disp st m task);
      socket_sendmsg = stock.socket_sendmsg;
      task_fix_setuid = (fun m task -> task_fix_setuid st m task);
      task_fix_setgid = (fun m task -> task_fix_setgid st m task);
      bprm_check = (fun m task -> bprm_check st m task);
      inode_permission = (fun m task -> inode_permission st m task);
      file_open = (fun m task -> file_open st m task);
      file_ioctl = (fun m task -> file_ioctl disp st m task) }
  in
  m.security <- ops;
  install_proc_files m st disp;
  install_sysfs_dm_files m;
  install_netfilter_rules m;
  Netfilter.set_output_override m.netfilter
    (Some
       (fun pkt ~origin ->
         let v = Pfm_dispatch.decide_nf_output disp m.netfilter pkt ~origin in
         (* Netfilter decisions have no task context, so the record
            trail rides on the kernel task with the origin uid in the
            descriptor; packets carry no lifecycle phase (phase=-). *)
         (if Pfm_dispatch.record_mode disp then
            let verdict =
              if Pfm_dispatch.last_recorded disp then "recorded" else "allow"
            in
            let uid =
              match origin with
              | Packet.Kernel_stack -> 0
              | Packet.Raw_app { uid } | Packet.Packet_app { uid } -> uid
            in
            let origin_s =
              match origin with
              | Packet.Kernel_stack -> "kernel"
              | Packet.Raw_app _ -> "raw"
              | Packet.Packet_app _ -> "packet"
            in
            let dport =
              match Packet.dst_port pkt with
              | Some p -> string_of_int p
              | None -> "-"
            in
            let icmp =
              match pkt.Packet.transport with
              | Packet.Icmp_msg { icmp_type; _ } ->
                  Packet.icmp_type_to_string icmp_type
              | _ -> "-"
            in
            Audit.emit m (Machine.kernel_task m) ~op:"record-nf"
              ~obj:
                (Printf.sprintf
                   "phase=- subject=%d verdict=%s proto=%s dst=%s dport=%s \
                    origin=%s icmp=%s"
                   uid verdict
                   (Packet.proto_to_string
                      (Packet.proto_of_transport pkt.Packet.transport))
                   (Protego_net.Ipaddr.to_string pkt.Packet.dst)
                   dport origin_s icmp)
              ~allowed:true);
         v));
  log_dmesg m "protego: LSM active";
  { machine = m; state = st; dispatch = disp }
