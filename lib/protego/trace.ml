module Pfm = Protego_filter.Pfm
module Errno = Protego_base.Errno

let default_span_capacity = 256
let bucket_count = 63

type key = {
  k_hook : string;
  k_engine : string;
  k_buckets : int array;
  mutable k_count : int;
  mutable k_max : int;
}

type span = {
  sp_id : int;
  sp_hook : string;
  sp_engine : string;
  sp_verdict : Pfm.verdict;
  sp_errno : Errno.t option;
  sp_gen : int;
  sp_epoch : int;
  sp_start : int;
  sp_ns : int;
  sp_stages : (string * int) list;
}

type t = {
  mutable clock : unit -> int;
  mutable has_clock : bool;
  mutable spans_on : bool;
  mutable armed : bool;
  mutable ring : span option array;
  mutable ring_pos : int;    (* next write slot *)
  mutable ring_len : int;
  mutable next_id : int;
  mutable keys_rev : key list;
  mutable arm_listener : bool -> unit;
}

let null_clock () = 0

let create ?(span_capacity = default_span_capacity) () =
  let span_capacity = max 1 span_capacity in
  { clock = null_clock; has_clock = false; spans_on = false; armed = false;
    ring = Array.make span_capacity None; ring_pos = 0; ring_len = 0;
    next_id = 1; keys_rev = []; arm_listener = ignore }

let rearm t =
  t.armed <- t.has_clock || t.spans_on;
  t.arm_listener t.armed

let on_arm t fn =
  t.arm_listener <- fn;
  fn t.armed

let set_clock t clock =
  t.clock <- clock;
  t.has_clock <- true;
  rearm t

let[@inline] now t = t.clock ()
let[@inline] armed t = t.armed

(* --- histograms --------------------------------------------------------- *)

(* Bucket i >= 1 holds ns in [2^(i-1), 2^i - 1]; bucket 0 holds ns <= 0.
   The index of a positive n is its bit length, clamped to the top. *)
let bucket_index ns =
  if ns <= 0 then 0
  else begin
    let i = ref 0 and n = ref ns in
    while !n > 0 do
      incr i;
      n := !n lsr 1
    done;
    if !i >= bucket_count then bucket_count - 1 else !i
  end

let bucket_upper i =
  if i <= 0 then 0
  else if i >= bucket_count - 1 then max_int
  else (1 lsl i) - 1

let register t ~hook ~engine =
  match
    List.find_opt (fun k -> k.k_hook = hook && k.k_engine = engine) t.keys_rev
  with
  | Some k -> k
  | None ->
      let k =
        { k_hook = hook; k_engine = engine;
          k_buckets = Array.make bucket_count 0; k_count = 0; k_max = 0 }
      in
      t.keys_rev <- k :: t.keys_rev;
      k

let observe k ~ns =
  let b = bucket_index ns in
  Array.unsafe_set k.k_buckets b (Array.unsafe_get k.k_buckets b + 1);
  k.k_count <- k.k_count + 1;
  if ns > k.k_max then k.k_max <- ns

let keys t = List.rev t.keys_rev
let buckets k = Array.copy k.k_buckets

let percentile k ~pct =
  if k.k_count = 0 then 0
  else begin
    let pct = if pct < 1 then 1 else if pct > 100 then 100 else pct in
    let need = ((k.k_count * pct) + 99) / 100 in
    let acc = ref 0 and b = ref 0 in
    while !acc < need && !b < bucket_count do
      acc := !acc + k.k_buckets.(!b);
      if !acc < need then incr b
    done;
    bucket_upper !b
  end

let reset_latency t =
  List.iter
    (fun k ->
      Array.fill k.k_buckets 0 bucket_count 0;
      k.k_count <- 0;
      k.k_max <- 0)
    t.keys_rev

(* --- spans -------------------------------------------------------------- *)

let[@inline] spans_enabled t = t.spans_on

let set_spans t on =
  t.spans_on <- on;
  rearm t

let span_capacity t = Array.length t.ring

let set_span_capacity t n =
  t.ring <- Array.make (max 1 n) None;
  t.ring_pos <- 0;
  t.ring_len <- 0

let record_span t ~hook ~engine ~verdict ~errno ~gen ~epoch ~start ~finish
    ~stages =
  if not t.spans_on then None
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let sp =
      { sp_id = id; sp_hook = hook; sp_engine = engine; sp_verdict = verdict;
        sp_errno = errno; sp_gen = gen; sp_epoch = epoch; sp_start = start;
        sp_ns = finish - start; sp_stages = stages }
    in
    let cap = Array.length t.ring in
    t.ring.(t.ring_pos) <- Some sp;
    t.ring_pos <- (t.ring_pos + 1) mod cap;
    if t.ring_len < cap then t.ring_len <- t.ring_len + 1;
    Some id
  end

let spans t =
  let cap = Array.length t.ring in
  let oldest = (t.ring_pos - t.ring_len + cap * 2) mod cap in
  List.init t.ring_len (fun i ->
      match t.ring.((oldest + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

let reset_spans t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_pos <- 0;
  t.ring_len <- 0

(* --- /proc renderers ---------------------------------------------------- *)

let verdict_name = function
  | Pfm.Allow -> "allow"
  | Pfm.Deny -> "deny"
  | Pfm.Reject -> "reject"

let render_trace t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "trace %s capacity %d spans %d next %d\n"
       (if t.spans_on then "on" else "off")
       (span_capacity t) t.ring_len t.next_id);
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           "span %d hook %s engine %s verdict %s errno %s gen %d epoch %d \
            start %d ns %d stages %s\n"
           sp.sp_id sp.sp_hook sp.sp_engine (verdict_name sp.sp_verdict)
           (match sp.sp_errno with Some e -> Errno.to_string e | None -> "-")
           sp.sp_gen sp.sp_epoch sp.sp_start sp.sp_ns
           (match sp.sp_stages with
            | [] -> "-"
            | ss ->
                String.concat ","
                  (List.map (fun (s, off) -> Printf.sprintf "%s+%d" s off) ss))))
    (spans t);
  Buffer.contents b

let handle_trace_write t contents =
  match String.trim contents with
  | "on" -> set_spans t true; Ok ()
  | "off" -> set_spans t false; Ok ()
  | "reset" -> reset_spans t; Ok ()
  | cmd -> (
      match String.index_opt cmd ' ' with
      | Some i when String.sub cmd 0 i = "capacity" -> (
          let arg = String.trim (String.sub cmd i (String.length cmd - i)) in
          match int_of_string_opt arg with
          | Some n when n >= 1 -> set_span_capacity t n; Ok ()
          | Some _ | None ->
              Error ("trace: capacity wants a positive integer: " ^ arg))
      | _ -> Error ("trace: unknown command: " ^ cmd))

let render_latency t =
  let ks = keys t in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "latency series %d buckets log2\n" (List.length ks));
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "hook %s engine %s count %d p50 %d p90 %d p99 %d max %d\n"
           k.k_hook k.k_engine k.k_count (percentile k ~pct:50)
           (percentile k ~pct:90) (percentile k ~pct:99) k.k_max))
    ks;
  Buffer.contents b

let handle_latency_write t contents =
  match String.trim contents with
  | "reset" -> reset_latency t; Ok ()
  | cmd -> Error ("latency: unknown command: " ^ cmd)
