(** Decision tracing and latency histograms for the filtered hooks.

    Two instruments, one per question:

    - {b Latency histograms} answer "where does a decision spend its
      time, statistically?".  Every (hook, engine) pair the dispatcher
      registers owns a log₂-bucketed histogram of per-decision latency;
      p50/p90/p99 are derived on read.  There is no user-facing toggle —
      histograms are always on — but they only see decisions while the
      tracer is {e armed} (a clock source is installed, or spans are
      on).  The stock simulator image has no nanosecond clock, so its
      hot path stays uninstrumented until a harness installs one with
      {!set_clock}; the bench and the tests do.

    - {b Spans} answer "what happened on {e this} decision?".  When
      enabled (opt-in, off by default), each decision records a span —
      hook, serving engine, verdict, errno, generation and epoch
      stamps, and per-stage timestamps (front slot, memo table, engine)
      — into a fixed-capacity ring buffer, and the decision's audit
      record carries the span id.

    Both are exposed through /proc/protego: [latency] (render +
    ["reset"]) and [trace] (render, ["on"], ["off"], ["reset"],
    ["capacity <n>"]).  Rationale for the asymmetry in DESIGN.md §5e. *)

module Pfm = Protego_filter.Pfm

type t

val create : ?span_capacity:int -> unit -> t
(** Unarmed (null clock), spans off, empty ring ({!default_span_capacity}
    slots), zeroed histograms. *)

val default_span_capacity : int
(** 256 spans. *)

(** {1 Clock}

    The tracer reads time through a pluggable nanosecond clock.  The
    default is the {e null clock} ([fun () -> 0]): with it the tracer is
    unarmed and the dispatcher skips instrumentation entirely, so an
    image that never installs a clock pays only a couple of loads and a
    predictable branch per decision. *)

val set_clock : t -> (unit -> int) -> unit
(** Install a monotonic nanosecond clock and arm the tracer. *)

val now : t -> int
(** Read the installed clock (0 under the null clock). *)

val armed : t -> bool
(** A real clock is installed, or spans are on.  The dispatcher's
    per-decision gate: nothing below is consulted while unarmed. *)

val on_arm : t -> (bool -> unit) -> unit
(** Register the single armed-state listener (replacing any previous
    one) and invoke it immediately with the current state.  The
    dispatcher mirrors the flag into its own record so the per-decision
    gate reads an already-hot cache line. *)

(** {1 Latency histograms} *)

type key = private {
  k_hook : string;
  k_engine : string;                (** ["cache"], ["pfm"] or ["ref"] *)
  k_buckets : int array;            (** [bucket_count] log₂ buckets *)
  mutable k_count : int;
  mutable k_max : int;              (** largest observed latency, ns *)
}
(** One histogram.  Obtain via {!register}; the dispatcher keeps the
    record so the hot path never resolves a series by name. *)

val bucket_count : int
(** 63: enough for any OCaml int latency. *)

val bucket_index : int -> int
(** [bucket_index ns]: 0 for [ns <= 0]; otherwise bucket [i >= 1] holds
    latencies in [2{^i-1} .. 2{^i}-1] ns (clamped to the top bucket). *)

val bucket_upper : int -> int
(** Upper bound of a bucket, the value percentiles report: 0 for bucket
    0, [2{^i}-1] otherwise (the top bucket reports [max_int]). *)

val register : t -> hook:string -> engine:string -> key
(** Idempotent per (hook, engine); registration order fixes the order of
    lines in {!render_latency}. *)

val observe : key -> ns:int -> unit
(** Count one decision latency. *)

val keys : t -> key list
(** Registration order. *)

val buckets : key -> int array
(** A copy of the bucket counts, for tests and reports. *)

val percentile : key -> pct:int -> int
(** [percentile k ~pct] for [pct] in [1..100]: the {!bucket_upper} of
    the bucket containing the [ceil (count * pct / 100)]-th smallest
    observed latency; 0 when the histogram is empty. *)

val reset_latency : t -> unit
(** Zero every histogram (buckets, counts, maxima); keys survive. *)

(** {1 Spans} *)

type span = {
  sp_id : int;                      (** unique, monotonic, never reused *)
  sp_hook : string;
  sp_engine : string;               (** what served the decision *)
  sp_verdict : Pfm.verdict;
  sp_errno : Protego_base.Errno.t option;
  sp_gen : int;                     (** generation stamp of the decision *)
  sp_epoch : int;                   (** decision-cache epoch *)
  sp_start : int;                   (** clock value at decision entry *)
  sp_ns : int;                      (** total latency *)
  sp_stages : (string * int) list;
      (** (stage, offset from [sp_start]) pairs in execution order:
          ["slot"], ["table"], ["engine"] — present as far as the
          decision got. *)
}

val spans_enabled : t -> bool
val set_spans : t -> bool -> unit
(** Enabling spans arms the tracer even under the null clock (offsets
    then read 0 but ordering and metadata remain). *)

val span_capacity : t -> int
val set_span_capacity : t -> int -> unit
(** Reallocate the ring (existing spans are dropped; ids keep
    counting).  Clamped to [>= 1]. *)

val record_span :
  t -> hook:string -> engine:string -> verdict:Pfm.verdict ->
  errno:Protego_base.Errno.t option -> gen:int -> epoch:int ->
  start:int -> finish:int -> stages:(string * int) list -> int option
(** [Some id] when spans are on (overwriting the oldest span once the
    ring is full); [None] — and no work — when off. *)

val spans : t -> span list
(** Oldest first; at most {!span_capacity} of them. *)

val reset_spans : t -> unit
(** Drop every span.  Ids are {e not} reset: a span id in an audit
    record stays unambiguous across resets. *)

(** {1 /proc/protego/trace} *)

val render_trace : t -> string
(** {v
    trace <on|off> capacity <n> spans <n> next <id>
    span <id> hook <h> engine <e> verdict <v> errno <E|-> gen <g> epoch <ep> start <t> ns <n> stages <s>+<off>[,...]|-
    v}
    spans oldest first. *)

val handle_trace_write : t -> string -> (unit, string) result
(** ["on"], ["off"], ["reset"], ["capacity <n>"]; anything else
    errors. *)

(** {1 /proc/protego/latency} *)

val render_latency : t -> string
(** {v
    latency series <n> buckets log2
    hook <h> engine <e> count <n> p50 <ns> p90 <ns> p99 <ns> max <ns>
    v}
    one line per registered (hook, engine), registration order. *)

val handle_latency_write : t -> string -> (unit, string) result
(** ["reset"]; anything else errors. *)
