open Protego_kernel
module Phase = Protego_base.Phase

type mount_rule = {
  mr_source : string;
  mr_target : string;
  mr_fstype : string;
  mr_flags : Ktypes.mount_flag list;
  mr_mode : [ `User | `Users ];
  mr_phase : Phase.guard;
}

type account_user = {
  au_name : string;
  au_uid : int;
  au_gid : int;
  au_groups : string list;
}

type account_group = {
  ag_name : string;
  ag_gid : int;
  ag_members : string list;
  ag_password : string option;
}

type source = Mounts | Binds | Delegation | Accounts | Ppp

let source_count = 5

let source_index = function
  | Mounts -> 0
  | Binds -> 1
  | Delegation -> 2
  | Accounts -> 3
  | Ppp -> 4

let source_name = function
  | Mounts -> "mounts"
  | Binds -> "binds"
  | Delegation -> "delegation"
  | Accounts -> "accounts"
  | Ppp -> "ppp"

type t = {
  mutable mounts : mount_rule list;
  mutable binds : Protego_policy.Bindconf.entry list;
  mutable delegation : Protego_policy.Sudoers.t;
  mutable users : account_user list;
  mutable groups : account_group list;
  mutable ppp : Protego_policy.Pppopts.t;
  mutable reauth_read_prefixes : string list;
  mutable file_acl : (string * string list) list;
  generations : int Atomic.t array;
}

let create () =
  { mounts = []; binds = []; delegation = Protego_policy.Sudoers.empty;
    users = []; groups = []; ppp = { Protego_policy.Pppopts.directives = [] };
    reauth_read_prefixes = [ "/etc/shadows/" ];
    file_acl =
      [ ("/etc/ssh/ssh_host_rsa_key", [ "/usr/lib/openssh/ssh-keysign" ]) ];
    generations = Array.init source_count (fun _ -> Atomic.make 0) }

let sources = [ Mounts; Binds; Delegation; Accounts; Ppp ]

(* Generations are Atomic.t, not plain ints: the decision plane
   (lib/plane) freezes the vector from, and the /proc writers bump it
   from, different domains.  Single-domain behaviour is unchanged —
   [Atomic.get]/[Atomic.incr] on an uncontended cell cost the same as the
   plain loads and stores they replace — but multi-domain reads are
   well-defined instead of racy. *)
let generation t s = Atomic.get t.generations.(source_index s)

let bump_generation t s = Atomic.incr t.generations.(source_index s)

(* --- name service ---------------------------------------------------- *)

let uid_of_name t name =
  List.find_opt (fun u -> u.au_name = name) t.users
  |> Option.map (fun u -> u.au_uid)

let name_of_uid t uid =
  List.find_opt (fun u -> u.au_uid = uid) t.users
  |> Option.map (fun u -> u.au_name)

let gid_of_group t name =
  List.find_opt (fun g -> g.ag_name = name) t.groups
  |> Option.map (fun g -> g.ag_gid)

let group_of_gid t gid = List.find_opt (fun g -> g.ag_gid = gid) t.groups

let group_names_of_user t name =
  match List.find_opt (fun u -> u.au_name = name) t.users with
  | None -> []
  | Some u ->
      let primary =
        match group_of_gid t u.au_gid with
        | Some g -> [ g.ag_name ]
        | None -> []
      in
      let members =
        List.filter_map
          (fun g -> if List.mem name g.ag_members then Some g.ag_name else None)
          t.groups
      in
      List.sort_uniq compare (primary @ u.au_groups @ members)

(* --- flags ------------------------------------------------------------ *)

let flag_to_string = function
  | Ktypes.Mf_readonly -> "ro"
  | Ktypes.Mf_nosuid -> "nosuid"
  | Ktypes.Mf_nodev -> "nodev"
  | Ktypes.Mf_noexec -> "noexec"

let flag_of_string = function
  | "ro" -> Some Ktypes.Mf_readonly
  | "nosuid" -> Some Ktypes.Mf_nosuid
  | "nodev" -> Some Ktypes.Mf_nodev
  | "noexec" -> Some Ktypes.Mf_noexec
  | _ -> None

let flags_to_string = function
  | [] -> "-"
  | flags -> String.concat "," (List.map flag_to_string flags)

let flags_of_string s =
  if s = "-" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match flag_of_string p with
          | Some f -> go (f :: acc) rest
          | None -> Error ("unknown mount flag: " ^ p))
    in
    go [] parts

(* --- /proc grammars ---------------------------------------------------- *)

let words line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let parse_mounts contents =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc rest
        else
          let entry source target fstype flags_s mode_s mr_phase =
            match (flags_of_string flags_s, mode_s) with
            | Ok mr_flags, ("user" | "users") ->
                let mr_mode = if mode_s = "user" then `User else `Users in
                go
                  ({ mr_source = source; mr_target = target;
                     mr_fstype = fstype; mr_flags; mr_mode; mr_phase } :: acc)
                  rest
            | Error e, _ -> Error e
            | Ok _, m -> Error ("mount_whitelist: bad mode: " ^ m)
          in
          match words trimmed with
          | [ "allow"; source; target; fstype; flags_s; mode_s ] ->
              entry source target fstype flags_s mode_s Phase.Always
          | [ "allow"; source; target; fstype; flags_s; mode_s; guard_s ] -> (
              match Phase.parse_guard guard_s with
              | Some (Ok g) -> entry source target fstype flags_s mode_s g
              | Some (Error e) -> Error ("mount_whitelist: " ^ e)
              | None -> Error ("mount_whitelist: malformed line: " ^ trimmed))
          | _ -> Error ("mount_whitelist: malformed line: " ^ trimmed))
  in
  go [] (String.split_on_char '\n' contents)

let mounts_to_string rules =
  let line r =
    Printf.sprintf "allow %s %s %s %s %s%s" r.mr_source r.mr_target r.mr_fstype
      (flags_to_string r.mr_flags)
      (match r.mr_mode with `User -> "user" | `Users -> "users")
      (match r.mr_phase with
      | Phase.Always -> ""
      | g -> " " ^ Phase.guard_to_string g)
  in
  String.concat "\n" (List.map line rules) ^ "\n"

let parse_csv_or_dash s =
  if s = "-" then [] else String.split_on_char ',' s

let parse_accounts contents =
  let rec go users groups = function
    | [] -> Ok (List.rev users, List.rev groups)
    | line :: rest -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go users groups rest
        else
          match words trimmed with
          | [ "user"; name; uid_s; gid_s; groups_s ] -> (
              match (int_of_string_opt uid_s, int_of_string_opt gid_s) with
              | Some au_uid, Some au_gid ->
                  go
                    ({ au_name = name; au_uid; au_gid;
                       au_groups = parse_csv_or_dash groups_s } :: users)
                    groups rest
              | _, _ -> Error ("accounts: bad uid/gid: " ^ trimmed))
          | "group" :: name :: gid_s :: members_s :: rest_fields -> (
              match int_of_string_opt gid_s with
              | Some ag_gid ->
                  let ag_password =
                    match rest_fields with [ h ] -> Some h | _ -> None
                  in
                  go users
                    ({ ag_name = name; ag_gid;
                       ag_members = parse_csv_or_dash members_s; ag_password }
                     :: groups)
                    rest
              | None -> Error ("accounts: bad gid: " ^ trimmed))
          | _ -> Error ("accounts: malformed line: " ^ trimmed))
  in
  go [] [] (String.split_on_char '\n' contents)

let accounts_to_string users groups =
  let csv_or_dash = function [] -> "-" | l -> String.concat "," l in
  let user_line u =
    Printf.sprintf "user %s %d %d %s" u.au_name u.au_uid u.au_gid
      (csv_or_dash u.au_groups)
  in
  let group_line g =
    Printf.sprintf "group %s %d %s%s" g.ag_name g.ag_gid
      (csv_or_dash g.ag_members)
      (match g.ag_password with Some h -> " " ^ h | None -> "")
  in
  String.concat "\n" (List.map user_line users @ List.map group_line groups) ^ "\n"

(* --- queries ----------------------------------------------------------- *)

let rule_active phase r =
  match phase with None -> true | Some p -> Phase.active r.mr_phase p

let find_mount_rule ?phase t ~source ~target ~fstype =
  List.find_opt
    (fun r ->
      rule_active phase r
      && r.mr_source = source && r.mr_target = target
      && (r.mr_fstype = fstype || fstype = "auto" || r.mr_fstype = "auto"))
    t.mounts

let flags_satisfy ~requested ~required =
  List.for_all (fun f -> List.mem f requested) required

let mount_decision ?phase t ~source ~target ~fstype ~flags =
  match find_mount_rule ?phase t ~source ~target ~fstype with
  | Some rule -> flags_satisfy ~requested:flags ~required:rule.mr_flags
  | None -> false

let umount_decision ?phase t ~target ~mounted_by ~ruid =
  match
    List.find_opt (fun r -> rule_active phase r && r.mr_target = target) t.mounts
  with
  | Some { mr_mode = `Users; _ } -> true
  | Some { mr_mode = `User; _ } -> mounted_by = ruid
  | None -> false

let ppp_ioctl_decision ?phase t ~device ~opt =
  Protego_policy.Pppopts.device_allowed ?phase t.ppp device
  && Protego_net.Ppp.option_is_safe opt

let bind_allowed ?phase t ~port ~proto ~exe ~uid =
  match Protego_policy.Bindconf.lookup ?phase t.binds ~port ~proto with
  | Some entry -> entry.exe = exe && entry.owner = uid
  | None -> false

let file_acl_allows t ~path ~exe =
  match List.assoc_opt path t.file_acl with
  | Some allowed -> Some (List.mem exe allowed)
  | None -> None

(* Allocation-free prefix test: this runs on every file open. *)
let has_prefix ~prefix s =
  let plen = String.length prefix in
  String.length s >= plen
  &&
  let rec go i = i >= plen || (s.[i] = prefix.[i] && go (i + 1)) in
  go 0

let needs_reauth_to_read t path =
  List.exists (fun prefix -> has_prefix ~prefix path) t.reauth_read_prefixes
