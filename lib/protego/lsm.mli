(** The Protego LSM: object-based policies for the paper's 8 interfaces.

    [install] replaces the machine's security operations with Protego's
    (which fall back to the stock checks for anything not covered), creates
    the /proc/protego configuration files, installs the default raw-socket
    netfilter rules, and exposes a /sys device-information file for every
    dm-crypt device.

    Hook-by-hook summary (Table 4 "Our approach" column):
    - [socket_create]: any user may create a raw or packet socket; such
      sockets are marked and their traffic is filtered (§4.1.1).
    - [socket_bind]: privileged ports are allocated to (binary, uid)
      instances by the bind map (§4.1.3).
    - [sb_mount]/[sb_umount]: whitelist check against the kernel copy of the
      "user" entries of /etc/fstab (§2, §4.2).
    - [task_fix_setuid]: delegation rules (sudoers) with recency-of-
      authentication; restricted transitions become setuid-on-exec (§4.3).
    - [task_fix_setgid]: membership or password-protected groups (newgrp).
    - [bprm_check]: resolves a pending setuid-on-exec; validates command
      arguments against the delegation rule.
    - [inode_permission]/[file_open]: reauthentication before reading
      fragmented shadow files; per-binary ACL on the host ssh key; shadow
      handles are forced close-on-exec (§4.4, §4.6).
    - [file_ioctl]: non-conflicting user routes and safe modem options for
      pppd (§4.1.2); the dm-crypt status ioctl stays root-only because the
      /sys interface replaces it (§4.1).

    The whitelist-shaped hooks (mount, umount, bind, the netfilter output
    chain and the modem-option ioctl) are evaluated through the
    {!Pfm_dispatch} filter machine; [install] also creates
    [/proc/protego/filter_stats] and interposes the dispatcher on the
    netfilter output chain. *)

open Protego_kernel

type t = {
  machine : Ktypes.machine;
  state : Policy_state.t;
  dispatch : Pfm_dispatch.t;
}

val install : Ktypes.machine -> t
(** Requires the /proc and /sys directories to exist (the image builder
    creates them); safe to call on a machine without them — the
    configuration files are then unavailable until created. *)

val state : t -> Policy_state.t
val dispatch : t -> Pfm_dispatch.t

val ensure_recent_auth : Ktypes.machine -> Policy_state.t -> Ktypes.task -> bool
(** True if the task's real uid authenticated within the delegation
    timeout; otherwise invokes the trusted authentication agent (if
    registered), which prompts on the task's terminal and updates
    [cred.last_auth]. *)

val default_raw_socket_rules : Protego_net.Netfilter.rule list
(** The hard-coded whitelist of safe packets from unprivileged raw/packet
    sockets, derived from the studied setuid binaries: ICMP echo and
    timestamp probes, traceroute UDP probes, ARP — then a terminal DROP for
    everything else of raw origin. *)
