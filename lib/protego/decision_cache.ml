module Pfm = Protego_filter.Pfm
module Errno = Protego_base.Errno

type hook = {
  hid : int;
  hname : string;
  mutable h_hits : int;
  mutable h_misses : int;
  mutable h_stale : int;
}

(* Keys deliberately store the hook as its dense id: key equality is then
   two int compares before the argument string is even looked at. *)
type key = { k_hook : int; k_subject : int; k_args : string }

type entry = {
  e_key : key;
  e_hook : hook;
  mutable e_gens : int array;
  mutable e_verdict : Pfm.verdict;
  mutable e_errno : Errno.t option;
  (* intrusive LRU list, most-recent at [head] *)
  mutable e_prev : entry option;
  mutable e_next : entry option;
}

type t = {
  cap : int;
  table : (key, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable size : int;
  mutable enabled : bool;
  (* Atomic: the dispatcher's front slots in other domains compare their
     stamped epoch against this on every decision, while [clear] bumps it
     from whichever domain serviced the /proc write. *)
  epoch : int Atomic.t;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evicted : int;
  mutable hooks : hook list;  (* reverse registration order *)
}

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  { cap; table = Hashtbl.create cap; head = None; tail = None; size = 0;
    enabled = true; epoch = Atomic.make 0; hits = 0; misses = 0; stale = 0;
    evicted = 0;
    hooks = [] }

let register t name =
  match List.find_opt (fun h -> h.hname = name) t.hooks with
  | Some h -> h
  | None ->
      let h =
        { hid = List.length t.hooks; hname = name; h_hits = 0; h_misses = 0;
          h_stale = 0 }
      in
      t.hooks <- h :: t.hooks;
      h

let capacity t = t.cap
let length t = t.size
let enabled t = t.enabled
let set_enabled t e = t.enabled <- e
let epoch t = Atomic.get t.epoch

let record_hit t hook =
  t.hits <- t.hits + 1;
  hook.h_hits <- hook.h_hits + 1

let hits t = t.hits
let misses t = t.misses
let stale_evictions t = t.stale
let capacity_evictions t = t.evicted
let hook_stats t = List.rev t.hooks

(* --- LRU list ----------------------------------------------------------- *)

let unlink t e =
  (match e.e_prev with
   | Some p -> p.e_next <- e.e_next
   | None -> t.head <- e.e_next);
  (match e.e_next with
   | Some n -> n.e_prev <- e.e_prev
   | None -> t.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front t e =
  e.e_prev <- None;
  e.e_next <- t.head;
  (match t.head with Some h -> h.e_prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match e.e_prev with
  | None -> ()  (* already most recent *)
  | Some _ ->
      unlink t e;
      push_front t e

let drop t e =
  unlink t e;
  Hashtbl.remove t.table e.e_key;
  t.size <- t.size - 1

(* --- the hot path ------------------------------------------------------- *)

let same_gens a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

let find t hook ~subject ~args ~gens =
  if not t.enabled then None
  else
    let key = { k_hook = hook.hid; k_subject = subject; k_args = args } in
    match Hashtbl.find_opt t.table key with
    | Some e when same_gens e.e_gens gens ->
        touch t e;
        t.hits <- t.hits + 1;
        hook.h_hits <- hook.h_hits + 1;
        Some (e.e_verdict, e.e_errno)
    | Some e ->
        drop t e;
        t.stale <- t.stale + 1;
        hook.h_stale <- hook.h_stale + 1;
        t.misses <- t.misses + 1;
        hook.h_misses <- hook.h_misses + 1;
        None
    | None ->
        t.misses <- t.misses + 1;
        hook.h_misses <- hook.h_misses + 1;
        None

let add t hook ~subject ~args ~gens ~verdict ~errno =
  if not t.enabled then ()
  else
    let key = { k_hook = hook.hid; k_subject = subject; k_args = args } in
    match Hashtbl.find_opt t.table key with
    | Some e ->
        e.e_gens <- Array.copy gens;
        e.e_verdict <- verdict;
        e.e_errno <- errno;
        touch t e
    | None ->
        if t.size >= t.cap then (
          match t.tail with
          | Some lru ->
              drop t lru;
              t.evicted <- t.evicted + 1
          | None -> ());
        let e =
          { e_key = key; e_hook = hook; e_gens = Array.copy gens;
            e_verdict = verdict; e_errno = errno; e_prev = None; e_next = None }
        in
        push_front t e;
        Hashtbl.add t.table key e;
        t.size <- t.size + 1

(* --- control ------------------------------------------------------------ *)

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0;
  Atomic.incr t.epoch

let reset t =
  clear t;
  t.hits <- 0;
  t.misses <- 0;
  t.stale <- 0;
  t.evicted <- 0;
  List.iter
    (fun h ->
      h.h_hits <- 0;
      h.h_misses <- 0;
      h.h_stale <- 0)
    t.hooks

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cache %s capacity %d entries %d\n"
       (if t.enabled then "on" else "off")
       t.cap t.size);
  Buffer.add_string b
    (Printf.sprintf "hits %d misses %d stale %d evicted %d\n" t.hits t.misses
       t.stale t.evicted);
  List.iter
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf "hook %s hits %d misses %d stale %d\n" h.hname h.h_hits
           h.h_misses h.h_stale))
    (hook_stats t);
  Buffer.contents b

let handle_write t contents =
  match String.trim contents with
  | "enable on" -> t.enabled <- true; Ok ()
  | "enable off" -> t.enabled <- false; Ok ()
  | "reset" -> reset t; Ok ()
  | other -> Error ("cache_stats: unknown command: " ^ other)
