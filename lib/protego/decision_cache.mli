(** The hot-path decision cache: a fixed-capacity, generation-stamped memo
    table in front of the filter-machine dispatcher.

    A filtered hook's decision is a pure function of (policy sources it
    reads, subject credential key, canonicalized argument tuple).  The
    dispatcher therefore memoizes verdicts: the lookup order on every
    filtered hook is {e cache -> compiled PFM -> reference engine}.  Both
    positive (Allow) and negative (Deny/Reject, with the errno the hook
    would return) results are cached.

    {b Invalidation is lazy and per-source, not a global flush.}  Every
    policy source carries a generation counter ({!Policy_state.generation});
    a cache entry is stamped with the generation vector of the sources its
    hook reads at insertion time.  A lookup compares the entry's vector
    against the current one and treats any mismatch as a miss, evicting the
    entry ("stale eviction").  A write to [/proc/protego/bind_map] thus
    invalidates only bind entries — cached mount verdicts survive — and
    nothing is scanned eagerly at reload time.

    Capacity is fixed at creation; when full, the least-recently-used entry
    is evicted ("capacity eviction").  A hit refreshes recency.

    The table is observable and controllable through
    [/proc/protego/cache_stats] (see {!render} / {!handle_write}). *)

module Pfm = Protego_filter.Pfm

type hook = private {
  hid : int;                (** dense id, assigned at registration *)
  hname : string;
  mutable h_hits : int;
  mutable h_misses : int;   (** includes stale lookups *)
  mutable h_stale : int;
}
(** Per-hook counters.  Obtain via {!register}; the dispatcher keeps the
    record and passes it back on every lookup so the hot path never
    resolves a hook by name. *)

type t

val default_capacity : int
(** 1024 entries. *)

val create : ?capacity:int -> unit -> t
(** Enabled, empty, zeroed stats.  [capacity] is clamped to [>= 1]. *)

val register : t -> string -> hook
(** Register a hook name (idempotent: re-registering returns the existing
    record).  Registration order fixes the order of per-hook lines in
    {!render}. *)

val capacity : t -> int
val length : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Disabled: {!find} always misses and {!add} is a no-op, without touching
    any counter — a pure bypass.  Entries already cached are kept; their
    generation stamps keep them safe to serve after re-enabling. *)

(** {1 The hot path} *)

val find :
  t -> hook -> subject:int -> args:string -> gens:int array ->
  (Pfm.verdict * Protego_base.Errno.t option) option
(** [Some (verdict, errno)] on a fresh hit ([errno] is the value the hook
    returns on a denial; [None] for Allow or verdicts without an errno).
    [None] on a miss — including a generation mismatch, which also evicts
    the stale entry and counts under [stale].  The caller owns [gens] and
    may reuse the array across calls; it is copied on insertion, compared
    elementwise here. *)

val add :
  t -> hook -> subject:int -> args:string -> gens:int array ->
  verdict:Pfm.verdict -> errno:Protego_base.Errno.t option -> unit
(** Insert (or refresh) the memo for a decision just computed by an
    engine.  Evicts the least-recently-used entry when at capacity. *)

(** {1 Front slots}

    Building the canonical argument string costs as much as evaluating a
    small compiled program, so the dispatcher keeps a one-entry front slot
    per hook, compared by {e physical} identity of the raw arguments (sound:
    the argument values are immutable) and validated by the same generation
    stamps.  The two functions below keep such slots coherent with this
    table: a slot is only served while {!epoch} still has the value the slot
    was stamped with, and a slot hit is counted here like any other hit. *)

val epoch : t -> int
(** Changes whenever memoized entries are dropped wholesale ({!clear} /
    {!reset} / the ["reset"] command) — front slots stamped with an older
    epoch must not be served. *)

val record_hit : t -> hook -> unit
(** Count a front-slot hit in the global and per-hook counters. *)

(** {1 Stats and control} *)

val hits : t -> int
val misses : t -> int
(** Lookups not served from cache — true misses plus stale evictions. *)

val stale_evictions : t -> int
val capacity_evictions : t -> int
val hook_stats : t -> hook list
(** Registration order. *)

val clear : t -> unit
(** Drop every entry; counters survive. *)

val reset : t -> unit
(** {!clear} plus zero every counter (global and per-hook). *)

val render : t -> string
(** The /proc/protego/cache_stats grammar:
    {v
    cache <on|off> capacity <n> entries <n>
    hits <n> misses <n> stale <n> evicted <n>
    hook <name> hits <n> misses <n> stale <n>
    v}
    with one [hook] line per registered hook, in registration order. *)

val handle_write : t -> string -> (unit, string) result
(** ["enable on"], ["enable off"], ["reset"]; anything else errors. *)
