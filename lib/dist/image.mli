(** Distribution image builder.

    Populates a simulated machine with the Ubuntu/Debian-like layout the
    paper's study assumes: users (root, alice, bob, charlie, service
    accounts), groups (incl. a password-protected one), the /etc policy
    files, devices (CD-ROM, USB stick, dm-crypt node, serial modem, video
    card), remote hosts, and the studied binaries — in one of two
    configurations:

    - [Linux]: the baseline — stock kernel policies with AppArmor loaded
      (no profiles), binaries installed setuid-to-root, legacy shared
      credential databases.
    - [Protego]: the Protego LSM active, the setuid bit removed from every
      studied binary, fragmented credential databases, the trusted
      authentication service registered, and the monitoring daemon started
      (initial policy sync performed). *)

open Protego_kernel

type config = Linux | Protego

type t = {
  machine : Ktypes.machine;
  config : config;
  apparmor : Protego_apparmor.Apparmor.t option;  (** baseline LSM handle *)
  protego : Protego_core.Lsm.t option;            (** Protego LSM handle *)
  plane : Protego_plane.Plane.t option;
      (** parallel decision plane over the LSM's policy state, with
          [/proc/protego/plane] installed; [None] on the Linux baseline *)
  daemon : Protego_services.Monitor_daemon.t option;
}

val build : config -> t

val flavor : config -> Protego_userland.Prog.flavor

val login :
  t -> string -> Ktypes.task
(** A logged-in shell task for the named user (credentials from the account
    database, tty attached, cwd at $HOME).  Raises [Failure] on unknown
    users. *)

val run :
  t -> Ktypes.task -> string -> string list -> (int, Protego_base.Errno.t) result
(** Fork-and-exec a binary as the given task (argv gets the path prepended);
    returns the exit status. *)

val uid_of : t -> string -> int
(** Uid from the image's account set; raises [Failure] on unknown users. *)

(** Well-known uids/gids in every image. *)

val alice_uid : int
val bob_uid : int
val charlie_uid : int
val exim_uid : int
val wwwdata_uid : int
val mail_gid : int
val dialout_gid : int
val lp_gid : int
val staff_gid : int
