open Protego_kernel
open Ktypes
module Ipaddr = Protego_net.Ipaddr
module Pwdb = Protego_policy.Pwdb
module U = Protego_userland

type config = Linux | Protego

type t = {
  machine : machine;
  config : config;
  apparmor : Protego_apparmor.Apparmor.t option;
  protego : Protego_core.Lsm.t option;
  plane : Protego_plane.Plane.t option;
  daemon : Protego_services.Monitor_daemon.t option;
}

let flavor = function Linux -> U.Prog.Legacy | Protego -> U.Prog.Protego

let alice_uid = 1000
let bob_uid = 1001
let charlie_uid = 1002
let exim_uid = 101
let wwwdata_uid = 33
let mail_gid = 8
let dialout_gid = 20
let lp_gid = 7
let staff_gid = 50
let cdrom_gid = 24
let shadow_gid = 42

(* (name, uid, gid, gecos, home, shell, password) *)
let account_users =
  [ ("root", 0, 0, "root", "/root", "/bin/sh", "root-pw");
    ("alice", alice_uid, alice_uid, "Alice", "/home/alice", "/bin/sh", "alice-pw");
    ("bob", bob_uid, bob_uid, "Bob", "/home/bob", "/bin/sh", "bob-pw");
    ("charlie", charlie_uid, charlie_uid, "Charlie", "/home/charlie", "/bin/sh",
     "charlie-pw");
    ("Debian-exim", exim_uid, exim_uid, "Exim MTA", "/var/spool/exim4",
     "/bin/false", "!");
    ("www-data", wwwdata_uid, wwwdata_uid, "Web server", "/var/www",
     "/bin/false", "!") ]

(* (name, gid, members, group password) *)
let account_groups =
  [ ("root", 0, [], None);
    ("alice", alice_uid, [], None);
    ("bob", bob_uid, [], None);
    ("charlie", charlie_uid, [], None);
    ("Debian-exim", exim_uid, [], None);
    ("www-data", wwwdata_uid, [], None);
    ("lp", lp_gid, [ "bob" ], None);
    ("mail", mail_gid, [ "Debian-exim" ], None);
    ("dialout", dialout_gid, [ "alice" ], None);
    ("cdrom", cdrom_gid, [ "alice" ], None);
    ("shadow", shadow_gid, [], None);
    ("staff", staff_gid, [ "bob" ], Some (Pwdb.hash_password "staff-pw")) ]

let supplementary_gids user =
  List.filter_map
    (fun (_, gid, members, _) -> if List.mem user members then Some gid else None)
    account_groups

let passwd_entries () =
  List.map
    (fun (name, uid, gid, gecos, home, shell, _) ->
      { Pwdb.pw_name = name; pw_uid = uid; pw_gid = gid; pw_gecos = gecos;
        pw_dir = home; pw_shell = shell })
    account_users

let shadow_entries () =
  List.map
    (fun (name, _, _, _, _, _, password) ->
      { Pwdb.sp_name = name;
        sp_hash = (if password = "!" then "!" else Pwdb.hash_password password);
        sp_lastchg = 15000 })
    account_users

let group_entries () =
  List.map
    (fun (name, gid, members, password) ->
      { Pwdb.gr_name = name; gr_password = password; gr_gid = gid;
        gr_members = members })
    account_groups

let fstab_contents =
  String.concat "\n"
    [ "# <file system> <mount point> <type> <options> <dump> <pass>";
      "/dev/sda1 / ext4 defaults 0 1";
      "/dev/cdrom /media/cdrom iso9660 ro,user 0 0";
      "/dev/sdb1 /media/usb vfat users 0 0";
      "/dev/sda2 /mnt/secure ext4 defaults 0 0";
      "fuse /home/alice/fuse fuse user 0 0";
      "10.0.0.7:/export/media /media/nfs nfs user 0 0";
      "//10.0.0.7/share /media/cifs cifs users 0 0" ]
  ^ "\n"

let sudoers_contents =
  String.concat "\n"
    [ "Defaults timestamp_timeout=5";
      "root ALL=(ALL) NOPASSWD: ALL";
      "alice ALL=(bob) /usr/bin/lpr";
      "alice ALL=(root) /usr/bin/sudoedit-helper /etc/motd";
      "bob ALL=(root) NOPASSWD: /bin/true";
      "charlie ALL=(ALL) ALL";
      "# su(1) semantics: anyone may become anyone with the target's password";
      "ALL ALL=(ALL) TARGETPW: ALL";
      "#includedir /etc/sudoers.d" ]
  ^ "\n"

let sudoers_lp_contents = "%lp ALL=(root) /usr/bin/lpr\n"

let bind_contents =
  String.concat "\n"
    [ "# port proto binary uid";
      Printf.sprintf "25 tcp /usr/sbin/exim4 %d" exim_uid;
      Printf.sprintf "587 tcp /usr/sbin/exim4 %d" exim_uid;
      Printf.sprintf "80 tcp /usr/sbin/httpd %d" wwwdata_uid ]
  ^ "\n"

let ppp_options_contents =
  String.concat "\n"
    [ "compress deflate"; "asyncmap 0"; "mru 1500"; "allow-user-routes";
      "allow-device /dev/ttyS0" ]
  ^ "\n"

let host_key_contents = "RSA-PRIVATE-KEY d34db33f-host-key-0001\n"

let dirs =
  [ ("/bin", 0o755); ("/sbin", 0o755); ("/usr", 0o755); ("/usr/bin", 0o755);
    ("/usr/sbin", 0o755); ("/usr/lib", 0o755); ("/usr/lib/openssh", 0o755);
    ("/usr/lib/eject", 0o755); ("/usr/lib/chromium", 0o755);
    ("/etc", 0o755); ("/etc/ppp", 0o755); ("/etc/cups", 0o755);
    ("/etc/polkit-1", 0o755); ("/etc/polkit-1/rules.d", 0o755);
    ("/etc/sudoers.d", 0o755); ("/etc/ssh", 0o755); ("/dev", 0o755);
    ("/dev/dri", 0o755); ("/proc", 0o555); ("/sys", 0o555);
    ("/sys/block", 0o555); ("/var", 0o755); ("/var/run", 0o755);
    ("/var/log", 0o755); ("/var/spool", 0o755); ("/var/spool/lpd", 0o1777);
    ("/var/spool/exim4", 0o755); ("/var/www", 0o755); ("/media", 0o755);
    ("/media/cdrom", 0o755); ("/media/usb", 0o755); ("/media/nfs", 0o755);
    ("/media/cifs", 0o755); ("/mnt", 0o755);
    ("/mnt/secure", 0o700); ("/root", 0o700); ("/home", 0o755);
    ("/tmp", 0o1777) ]

let build_users_fs m kt config =
  List.iter (fun (d, mode) -> ignore (Machine.mkdir_p m kt d ~mode ())) dirs;
  (* Home directories. *)
  List.iter
    (fun (name, uid, gid, _, home, _, _) ->
      if name <> "root" then
        ignore (Machine.mkdir_p m kt home ~mode:0o755 ~uid ~gid ()))
    account_users;
  ignore (Machine.mkdir_p m kt "/home/alice/fuse" ~mode:0o755 ~uid:alice_uid
            ~gid:alice_uid ());
  (* /var/mail: group-writable by mail. *)
  ignore (Machine.mkdir_p m kt "/var/mail" ~mode:0o2775 ~gid:mail_gid ());
  (* Mail spool and log owned by the mail service account — the
     file-system-permissions hardening technique of §3.1. *)
  (match Vfs.resolve m kt "/var/spool/exim4" with
  | Ok d ->
      d.iuid <- exim_uid;
      d.igid <- exim_uid
  | Error _ -> ());
  ignore
    (Machine.write_file m kt ~path:"/var/log/exim4-mainlog" ~mode:0o640
       ~uid:exim_uid ~gid:exim_uid "");
  (* Legacy shared credential databases. *)
  let wf path ?mode ?uid ?gid contents =
    ignore (Machine.write_file m kt ~path ?mode ?uid ?gid contents)
  in
  wf "/etc/passwd" ~mode:0o644 (Pwdb.passwd_to_string (passwd_entries ()));
  wf "/etc/shadow" ~mode:0o640 ~gid:shadow_gid
    (Pwdb.shadow_to_string (shadow_entries ()));
  wf "/etc/group" ~mode:0o644 (Pwdb.group_to_string (group_entries ()));
  (* Fragmented databases (Protego §4.4). *)
  if config = Protego then begin
    ignore (Machine.mkdir_p m kt "/etc/passwds" ~mode:0o755 ());
    ignore (Machine.mkdir_p m kt "/etc/shadows" ~mode:0o755 ());
    ignore (Machine.mkdir_p m kt "/etc/groups" ~mode:0o755 ());
    List.iter2
      (fun pw sp ->
        let uid = pw.Pwdb.pw_uid in
        wf ("/etc/passwds/" ^ pw.Pwdb.pw_name) ~mode:0o600 ~uid ~gid:pw.Pwdb.pw_gid
          (Pwdb.passwd_entry_to_line pw ^ "\n");
        wf ("/etc/shadows/" ^ pw.Pwdb.pw_name) ~mode:0o600 ~uid
          (Pwdb.shadow_entry_to_line sp ^ "\n"))
      (passwd_entries ()) (shadow_entries ());
    List.iter
      (fun gr ->
        wf ("/etc/groups/" ^ gr.Pwdb.gr_name) ~mode:0o664 ~gid:gr.Pwdb.gr_gid
          (Pwdb.group_entry_to_line gr ^ "\n"))
      (group_entries ())
  end;
  (* CUPS printing passwords: legacy shared db vs per-user fragments. *)
  wf "/etc/cups/passwd.md5" ~mode:0o600
    ("alice:" ^ Pwdb.hash_password "print-pw" ^ "\n");
  if config = Protego then begin
    ignore (Machine.mkdir_p m kt "/etc/cups/passwds" ~mode:0o755 ());
    List.iter
      (fun (name, uid, gid, _, _, _, password) ->
        if password <> "!" then
          wf ("/etc/cups/passwds/" ^ name) ~mode:0o600 ~uid ~gid
            (name ^ ":" ^ Pwdb.hash_password "print-pw" ^ "\n"))
      account_users
  end;
  (* PolicyKit rules, translated into delegation rules by the daemon. *)
  wf "/etc/polkit-1/rules.d/50-default.rules" ~mode:0o644
    (String.concat "\n"
       [ "action /usr/bin/systemctl-restart allow group:staff auth_self";
         "action /usr/bin/backup-tool allow user:alice auth_admin";
         "action /usr/bin/uptime allow all yes" ]
    ^ "\n");
  (* Policy files. *)
  wf "/etc/fstab" ~mode:0o644 fstab_contents;
  wf "/etc/sudoers" ~mode:0o440 sudoers_contents;
  wf "/etc/sudoers.d/lp" ~mode:0o440 sudoers_lp_contents;
  wf "/etc/bind" ~mode:0o644 bind_contents;
  wf "/etc/ppp/options" ~mode:0o644 ppp_options_contents;
  wf "/etc/shells" ~mode:0o644 "/bin/sh\n/bin/bash\n";
  wf "/etc/motd" ~mode:0o644 "Welcome to the Protego reproduction machine\n";
  wf "/etc/hostname" ~mode:0o644 "protego-sim\n";
  wf "/var/spool/lpd/queue" ~mode:0o666 "";
  (* Host ssh key: legacy locks it to root; Protego relaxes DAC and relies
     on the kernel's per-binary ACL (§4.6). *)
  let key_mode = match config with Linux -> 0o600 | Protego -> 0o444 in
  wf "/etc/ssh/ssh_host_rsa_key" ~mode:key_mode host_key_contents

let cdrom_media =
  { media_fstype = "iso9660";
    media_files =
      [ ("README", "Protego demo CD-ROM\n");
        ("tracks/track01.ogg", "audio-bits"); ("tracks/track02.ogg", "more-bits") ] }

let usb_media =
  { media_fstype = "vfat";
    media_files = [ ("photos/p1.jpg", "jpeg-bits"); ("notes.txt", "usb notes") ] }

let secure_media =
  { media_fstype = "ext4"; media_files = [ ("secrets.txt", "top secret\n") ] }

let build_devices m kt config =
  let mkdev path ?mode ?uid ?gid dev =
    ignore (Machine.mkdev m kt ~path ?mode ?uid ?gid dev)
  in
  mkdev "/dev/null" ~mode:0o666 Dev_null;
  mkdev "/dev/tty1" ~mode:0o620 (Dev_tty { tty_index = 1 });
  mkdev "/dev/ttyS0" ~mode:0o660 ~gid:dialout_gid
    (Dev_serial { serial_name = "ttyS0" });
  (* The paper changes /dev/ppp permissions to be more permissive,
     replacing a capability check with device file permissions (§4.1.2). *)
  mkdev "/dev/ppp" ~mode:(match config with Linux -> 0o600 | Protego -> 0o666)
    Dev_ppp;
  mkdev "/dev/cdrom" ~mode:0o660 ~gid:cdrom_gid
    (Dev_block { media = Some cdrom_media });
  mkdev "/dev/sdb1" ~mode:0o660 (Dev_block { media = Some usb_media });
  mkdev "/dev/sda2" ~mode:0o660 (Dev_block { media = Some secure_media });
  mkdev "/dev/dm-0" ~mode:0o600
    (Dev_dm { dm_underlying = "/dev/sda2"; dm_cipher = "aes-xts-plain64";
              dm_key = "0123deadbeefcafe" });
  (* Video: the Linux baseline models a pre-KMS driver (X must be root);
     Protego/modern relies on kernel mode setting (§4.5). *)
  mkdev "/dev/dri/card0" ~mode:0o666
    (Dev_video { kms = (config = Protego); video_mode = "text" })

(* /proc/net/route: destination prefixes, one per line — what route(8) and
   pppd read to learn the current table. *)
let install_proc_net m =
  let kt = Machine.kernel_task m in
  ignore (Machine.mkdir_p m kt "/proc/net" ());
  ignore
    (Machine.add_vnode m kt ~path:"/proc/net/route" ~mode:0o444
       ~read:(fun m _t ->
         let lines =
           List.map
             (fun (e : Protego_net.Route.entry) ->
               Printf.sprintf "%s %s %s"
                 (Ipaddr.Cidr.to_string e.dest)
                 (match e.gateway with Some g -> Ipaddr.to_string g | None -> "*")
                 e.device)
             (Protego_net.Route.entries m.routes)
         in
         Ok (String.concat "\n" lines ^ "\n"))
       ~write:(fun _m _t _s -> Error Protego_base.Errno.EACCES)
       ())

let build_network m =
  install_proc_net m;
  m.local_addrs <- [ Ipaddr.localhost; Ipaddr.v 10 0 0 2 ];
  let route dest gateway device metric =
    Protego_net.Route.add m.routes
      { Protego_net.Route.dest; gateway; device; metric; owner_uid = None }
  in
  route (Ipaddr.Cidr.make (Ipaddr.v 10 0 0 0) 24) None "eth0" 1;
  route (Ipaddr.Cidr.make (Ipaddr.v 0 0 0 0) 0) (Some (Ipaddr.v 10 0 0 1)) "eth0" 10;
  m.remote_hosts <-
    [ { rh_addr = Ipaddr.v 10 0 0 1; rh_hops = 1; rh_echo = true;
        rh_udp_echo_ports = []; rh_tcp_open_ports = []; rh_exports = [] };
      { rh_addr = Ipaddr.v 10 0 0 7; rh_hops = 3; rh_echo = true;
        rh_udp_echo_ports = [ 7 ]; rh_tcp_open_ports = [ 7; 80 ];
        rh_exports =
          [ ("/export/media", [ ("shared.txt", "nfs share contents\n") ]);
            ("/share", [ ("win/readme.txt", "cifs share contents\n") ]) ] };
      { rh_addr = Ipaddr.v 93 184 216 34; rh_hops = 5; rh_echo = true;
        rh_udp_echo_ports = []; rh_tcp_open_ports = [ 80 ]; rh_exports = [] };
      { rh_addr = Ipaddr.v 192 168 77 1; rh_hops = 1; rh_echo = true;
        rh_udp_echo_ports = []; rh_tcp_open_ports = []; rh_exports = [] };
      { rh_addr = Ipaddr.v 192 168 77 5; rh_hops = 2; rh_echo = true;
        rh_udp_echo_ports = []; rh_tcp_open_ports = [ 80 ]; rh_exports = [] } ]

(* The studied binaries.  In the Linux configuration each is installed mode
   4755 (setuid root); under Protego the bit is dropped — the paper's
   headline change. *)
let studied_binaries fl =
  [ ("/bin/mount", U.Bin_mount.mount fl);
    ("/bin/umount", U.Bin_mount.umount fl);
    ("/bin/fusermount", U.Bin_mount.fusermount fl);
    ("/sbin/mount.nfs", U.Bin_mount.mount_nfs fl);
    ("/sbin/mount.cifs", U.Bin_mount.mount_cifs fl);
    ("/bin/ping", U.Bin_ping.ping fl);
    ("/bin/ping6", U.Bin_ping.ping6 fl);
    ("/usr/bin/fping", U.Bin_ping.fping fl);
    ("/usr/bin/traceroute", U.Bin_traceroute.traceroute fl);
    ("/usr/bin/tcptraceroute", U.Bin_tcptraceroute.tcptraceroute fl);
    ("/usr/bin/mtr", U.Bin_traceroute.mtr fl);
    ("/usr/bin/arping", U.Bin_arping.arping fl);
    ("/usr/sbin/pppd", U.Bin_pppd.pppd fl);
    ("/usr/lib/eject/dmcrypt-get-device", U.Bin_dmcrypt.dmcrypt_get_device fl);
    ("/usr/bin/eject", U.Bin_eject.eject fl);
    ("/usr/bin/sudo", U.Bin_sudo.sudo fl);
    ("/bin/su", U.Bin_sudo.su fl);
    ("/usr/bin/sudoedit", U.Bin_sudo.sudoedit fl);
    ("/usr/bin/pkexec", U.Bin_pkexec.pkexec fl);
    ("/usr/bin/newgrp", U.Bin_sudo.newgrp fl);
    ("/usr/bin/passwd", U.Bin_passwd.passwd fl);
    ("/usr/bin/chsh", U.Bin_passwd.chsh fl);
    ("/usr/bin/chfn", U.Bin_passwd.chfn fl);
    ("/usr/bin/gpasswd", U.Bin_passwd.gpasswd fl);
    ("/usr/bin/lppasswd", U.Bin_passwd.lppasswd fl);
    ("/usr/sbin/vipw", U.Bin_passwd.vipw fl);
    ("/usr/lib/openssh/ssh-keysign", U.Bin_keysign.ssh_keysign fl);
    ("/usr/sbin/exim4", U.Bin_exim.exim fl);
    ("/usr/sbin/httpd", U.Bin_exim.httpd fl);
    ("/usr/bin/X", U.Bin_login.xserver fl);
    ("/usr/lib/pt_chown", U.Bin_login.pt_chown fl) ]

let plain_binaries fl =
  [ ("/bin/true", U.Bin_misc.true_); ("/bin/false", U.Bin_misc.false_);
    ("/bin/sh", U.Bin_misc.sh); ("/bin/bash", U.Bin_misc.sh);
    ("/bin/ls", U.Bin_misc.ls); ("/bin/cat", U.Bin_misc.cat);
    ("/usr/bin/id", U.Bin_misc.id); ("/usr/bin/lpr", U.Bin_misc.lpr);
    ("/usr/bin/sudoedit-helper", U.Bin_sudo.sudoedit_helper);
    ("/sbin/iptables", U.Bin_iptables.iptables fl);
    ("/usr/bin/systemctl-restart",
     (fun m task _argv ->
       if Protego_kernel.Syscall.geteuid task <> 0 then Ok 4
       else begin
         Ktypes.console m "%s" "systemd: nginx restarted";
         Ok 0
       end));
    ("/usr/bin/backup-tool",
     (fun m task _argv ->
       match
         Protego_kernel.Syscall.write_file m task "/root/backup.marker" "done"
       with
       | Ok () ->
           Ktypes.console m "%s" "backup-tool: backup complete";
           Ok 0
       | Error _ -> Ok 4));
    ("/usr/bin/uptime",
     (fun m _task _argv ->
       Ktypes.console m "up %.0f seconds" m.Ktypes.now;
       Ok 0));
    ("/sbin/setcap", U.Bin_setcap.setcap fl);
    ("/sbin/getcap", U.Bin_setcap.getcap fl);
    ("/bin/login", U.Bin_login.login fl) ]

let build_binaries m kt config =
  let fl = flavor config in
  let setuid_mode = match config with Linux -> 0o4755 | Protego -> 0o755 in
  List.iter
    (fun (path, prog) ->
      ignore (Machine.install_binary m kt ~path ~mode:setuid_mode prog))
    (studied_binaries fl);
  List.iter
    (fun (path, prog) -> ignore (Machine.install_binary m kt ~path ~mode:0o755 prog))
    (plain_binaries fl);
  (* chromium-sandbox stays setuid on BOTH systems on a 3.6 kernel: the
     namespace interface's safe policy was not yet understood, the paper's
     one sanctioned use of re-enabling the bit (§4.6).  Kernels >= 3.8
     (machine.unpriv_userns) let the administrator drop it. *)
  ignore
    (Machine.install_binary m kt ~path:"/usr/lib/chromium/chromium-sandbox"
       ~mode:0o4755
       (U.Bin_sandbox.chromium_sandbox fl))

let build config =
  let m = Machine.create () in
  let kt = Machine.kernel_task m in
  build_users_fs m kt config;
  build_devices m kt config;
  build_network m;
  build_binaries m kt config;
  match config with
  | Linux ->
      (* Baseline: AppArmor LSM loaded, no profiles — the paper's
         measurement baseline. *)
      let aa = Protego_apparmor.Apparmor.install m in
      { machine = m; config; apparmor = Some aa; protego = None; plane = None;
        daemon = None }
  | Protego ->
      let lsm = Protego_core.Lsm.install m in
      let plane =
        Protego_plane.Plane.create
          ~domains:(Domain.recommended_domain_count ())
          (Protego_core.Lsm.state lsm)
      in
      Protego_plane.Plane.install_proc m plane;
      Protego_services.Auth_service.install m;
      let daemon = Protego_services.Monitor_daemon.start m in
      { machine = m; config; apparmor = None; protego = Some lsm;
        plane = Some plane; daemon = Some daemon }

let uid_of _t name =
  match List.find_opt (fun (n, _, _, _, _, _, _) -> n = name) account_users with
  | Some (_, uid, _, _, _, _, _) -> uid
  | None -> failwith ("unknown user: " ^ name)

let login t name =
  match List.find_opt (fun (n, _, _, _, _, _, _) -> n = name) account_users with
  | None -> failwith ("unknown user: " ^ name)
  | Some (_, uid, gid, _, home, _, _) ->
      let cred = Cred.make ~uid ~gid ~groups:(supplementary_gids name) () in
      let task =
        Machine.spawn_task t.machine ~tty:"/dev/tty1" ~cred ~cwd:home
          ~env:[ ("PATH", "/bin:/usr/bin:/sbin:/usr/sbin");
                 ("HOME", home); ("USER", name); ("TERM", "xterm");
                 ("LANG", "C") ]
          ()
      in
      task.exe_path <- "/bin/sh";
      task

let run t task path args =
  let child = Syscall.fork t.machine task in
  let result = Syscall.execve t.machine child path (path :: args) child.env in
  (match result with
  | Ok code -> Syscall.exit t.machine child code
  | Error _ -> Syscall.exit t.machine child 127);
  (match Syscall.waitpid t.machine task child.tpid with
  | Ok _ -> ()
  | Error _ -> ());
  result
